// Package telemetry is the live observability layer of the runtime: an
// always-compilable, near-zero-overhead instrumentation substrate that
// records what each rank actually does while an exchange executes — as
// opposed to internal/trace (post-hoc plan verification) and
// internal/metrics (static schedule summaries), which only describe what a
// run *should* do.
//
// A Registry holds one collector per rank. Each collector keeps
//
//   - per-stage hot-path counters (frames and bytes sent, received, and
//     forwarded, barrier entries and wait time) as plain atomics, and
//   - a fixed-size ring of wall-clock spans (session phases, exchange
//     stages, replay gather/forward/deliver phases) stamped against the
//     registry's epoch.
//
// Everything is preallocated at New: the steady-state path performs no
// locking and no allocation, only atomic adds and array stores, so the
// layer may stay enabled inside the zero-alloc iteration gate
// (TestSessionMultiplyZeroAlloc) and under benchmarks. A nil *Registry or
// nil *Rank is a valid, fully disabled collector: every method is
// nil-receiver safe, so call sites need no conditional wiring.
//
// Exporters turn a snapshot into a Chrome trace-event JSON (one track per
// rank, one slice per span — loadable in Perfetto, see WriteTrace), a
// log-scale histogram summary (WriteHistograms), or a live HTTP /debug
// endpoint (ServeDebug: expvar counters, pprof, trace download).
//
// Span rings are sized by Config.SpanCap and overwrite oldest entries when
// they wrap; counters never saturate. Spans may be recorded from the two
// goroutines a rank legitimately runs (main loop and the pipelined send
// worker): slots are claimed with an atomic cursor, so concurrent writers
// never tear each other's entries, though a reader racing a writer on a
// just-reclaimed slot may observe a mixed span. Snapshots are therefore
// advisory during a run and exact once the run has quiesced (e.g. after
// runtime.Run returns or at a barrier).
package telemetry

import (
	"fmt"
	"sync/atomic"
	"time"

	"stfw/internal/runtime"
)

// Kind classifies a recorded span.
type Kind uint8

// Span kinds, ordered roughly outermost to innermost: session phases
// (gather/exchange/kernel/reduce), then one communication stage of an
// exchange, then the compiled replay's per-stage forward (frame build +
// send) and deliver (receive + scatter) halves.
const (
	KGather Kind = iota
	KExchange
	KKernel
	KReduce
	KStage
	KForward
	KDeliver
	KPatch
	numKinds
)

// String implements fmt.Stringer; the names double as trace-event slice
// names.
func (k Kind) String() string {
	switch k {
	case KGather:
		return "gather"
	case KExchange:
		return "exchange"
	case KKernel:
		return "kernel"
	case KReduce:
		return "reduce"
	case KStage:
		return "stage"
	case KForward:
		return "forward"
	case KDeliver:
		return "deliver"
	case KPatch:
		return "patch"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Span is one recorded wall-clock interval on one rank's timeline.
type Span struct {
	Kind  Kind
	Stage int32 // communication stage, -1 when the span is not stage-scoped
	Start int64 // nanoseconds since the registry epoch
	Dur   int64 // nanoseconds
}

// StageCounters are one rank's hot-path counters for one communication
// stage. Sends/Recvs count transport frames (empty frames included — their
// arrival is part of the schedule); Forwards counts store-and-forwarded
// submessages routed through this rank during the stage.
type StageCounters struct {
	Sends, SendBytes   atomic.Int64
	Recvs, RecvBytes   atomic.Int64
	Forwards, FwdBytes atomic.Int64
}

// CounterSnapshot is a plain-value copy of one stage's counters.
type CounterSnapshot struct {
	Sends, SendBytes   int64
	Recvs, RecvBytes   int64
	Forwards, FwdBytes int64
}

// Config sizes a Registry. The zero value of SpanCap selects
// DefaultSpanCap; Stages must cover the largest stage index that will be
// counted (stage indices at or above Stages fold into the last slot so a
// misconfigured mapper degrades attribution, never safety).
type Config struct {
	Ranks  int
	Stages int
	// SpanCap is the per-rank span ring capacity; the ring overwrites its
	// oldest entries once it wraps. Rounded up to a power of two so the
	// hot-path ring index is a bit mask.
	SpanCap int
}

// DefaultSpanCap is the per-rank span ring capacity when Config.SpanCap is
// zero: enough for hundreds of iterations of a high-dimensional exchange.
const DefaultSpanCap = 4096

// Registry is the world-wide collector set: one Rank collector per rank,
// a shared epoch all span timestamps are measured from, and the global
// log-scale histograms.
type Registry struct {
	epoch   time.Time
	stages  int
	spanCap int
	ranks   []Rank
}

// New creates a fully preallocated registry. Ranks and Stages must be
// positive.
func New(cfg Config) (*Registry, error) {
	if cfg.Ranks < 1 {
		return nil, fmt.Errorf("telemetry: %d ranks", cfg.Ranks)
	}
	if cfg.Stages < 1 {
		return nil, fmt.Errorf("telemetry: %d stages", cfg.Stages)
	}
	if cfg.SpanCap == 0 {
		cfg.SpanCap = DefaultSpanCap
	}
	if cfg.SpanCap < 1 {
		return nil, fmt.Errorf("telemetry: span capacity %d", cfg.SpanCap)
	}
	// Round the ring up to a power of two so the hot-path ring index is a
	// mask rather than an integer division.
	cap := 1
	for cap < cfg.SpanCap {
		cap <<= 1
	}
	g := &Registry{epoch: time.Now(), stages: cfg.Stages, spanCap: cap}
	g.ranks = make([]Rank, cfg.Ranks)
	for r := range g.ranks {
		g.ranks[r].reg = g
		g.ranks[r].rank = r
		g.ranks[r].epoch = g.epoch
		g.ranks[r].stages = make([]StageCounters, cfg.Stages)
		g.ranks[r].spans = make([]Span, cap)
	}
	return g, nil
}

// MustNew is New for statically valid configurations.
func MustNew(cfg Config) *Registry {
	g, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// Ranks returns the world size the registry was built for, 0 when nil.
func (g *Registry) Ranks() int {
	if g == nil {
		return 0
	}
	return len(g.ranks)
}

// Stages returns the per-rank stage slot count, 0 when nil.
func (g *Registry) Stages() int {
	if g == nil {
		return 0
	}
	return g.stages
}

// Epoch returns the instant span offsets are measured from.
func (g *Registry) Epoch() time.Time {
	if g == nil {
		return time.Time{}
	}
	return g.epoch
}

// Rank returns rank r's collector, or nil when the registry is nil or r is
// out of range — so `reg.Rank(c.Rank())` is always safe to wire through.
func (g *Registry) Rank(r int) *Rank {
	if g == nil || r < 0 || r >= len(g.ranks) {
		return nil
	}
	return &g.ranks[r]
}

// Rank is one rank's collector. All methods are nil-receiver safe and
// allocation-free.
type Rank struct {
	reg    *Registry
	rank   int
	epoch  time.Time // reg.epoch, copied here to spare a pointer chase per span
	stages []StageCounters

	Barriers  atomic.Int64
	BarrierNs atomic.Int64

	// Patch counters: dynamic-sparsity schedule patches applied on this
	// rank, the nanoseconds spent applying them, and the cumulative count
	// of stages they dirtied (see core.Persistent.Patch).
	Patches          atomic.Int64
	PatchNs          atomic.Int64
	PatchDirtyStages atomic.Int64

	// Batched-transport counters (internal/transport/udpnet): Batches is
	// the number of batched socket submissions (one sendmmsg/recvmmsg-style
	// call each) and BatchDgrams the datagrams they carried, so
	// BatchDgrams/Batches is the realized coalescing factor. Resends counts
	// retransmitted packets (loss recovery), CreditStalls the sends that
	// had to wait on a full in-flight window before claiming a packet slot.
	Batches      atomic.Int64
	BatchDgrams  atomic.Int64
	Resends      atomic.Int64
	CreditStalls atomic.Int64

	// FrameSizes observes the byte length of every frame this rank sends
	// through a wrapped communicator; StageNs observes the duration of its
	// stage-scoped spans (KStage, KForward, KDeliver); DgramSizes observes
	// the wire length of every datagram a batched transport first-transmits
	// or receives (see udpnet), so the realized coalescing shows up as a
	// distribution, not just a mean. The histograms are per-rank — not
	// registry-global — so hot-path observations never contend on shared
	// cache lines; Snapshot merges them world-wide.
	FrameSizes Histogram
	StageNs    Histogram
	DgramSizes Histogram

	spans  []Span
	cursor atomic.Int64 // total spans ever recorded; ring index = cursor & (cap-1)

	// linkSrc holds the transport's per-link wire-stats source for this
	// rank (runtime.LinkStatsSource), registered by WrapComm when the
	// wrapped transport exposes one. Boxed so repeated registrations with
	// different transports keep a single concrete type in the atomic.Value.
	linkSrc atomic.Value // of linkSrcBox
}

type linkSrcBox struct{ src runtime.LinkStatsSource }

// stageSlot folds out-of-range stage indices into the edge slots so a
// mapper bug can at worst misattribute, never index out of bounds.
func (t *Rank) stageSlot(stage int) *StageCounters {
	if stage < 0 {
		stage = 0
	}
	if stage >= len(t.stages) {
		stage = len(t.stages) - 1
	}
	return &t.stages[stage]
}

// CountSend records one sent frame of the given byte length in the stage's
// counters and the registry's frame-size histogram.
func (t *Rank) CountSend(stage, bytes int) {
	if t == nil {
		return
	}
	s := t.stageSlot(stage)
	s.Sends.Add(1)
	s.SendBytes.Add(int64(bytes))
	t.FrameSizes.Observe(int64(bytes))
}

// CountRecv records one received frame of the given byte length.
func (t *Rank) CountRecv(stage, bytes int) {
	if t == nil {
		return
	}
	s := t.stageSlot(stage)
	s.Recvs.Add(1)
	s.RecvBytes.Add(int64(bytes))
}

// CountForward records store-and-forwarded submessages routed through this
// rank in the given stage: subs submessages totalling the given payload
// bytes.
func (t *Rank) CountForward(stage, subs, bytes int) {
	if t == nil {
		return
	}
	s := t.stageSlot(stage)
	s.Forwards.Add(int64(subs))
	s.FwdBytes.Add(int64(bytes))
}

// CountBarrier records one barrier entry and the nanoseconds spent waiting
// in it.
func (t *Rank) CountBarrier(ns int64) {
	if t == nil {
		return
	}
	t.Barriers.Add(1)
	t.BarrierNs.Add(ns)
}

// CountPatch records one applied schedule patch: the number of stages it
// dirtied and the wall-clock duration of applying it. Patching is a
// control-plane event (it happens between iterations, not inside them), so
// the latency lands in the counters and a KPatch span rather than the
// stage-scoped histograms.
func (t *Rank) CountPatch(dirtyStages int, d time.Duration) {
	if t == nil {
		return
	}
	t.Patches.Add(1)
	t.PatchNs.Add(d.Nanoseconds())
	t.PatchDirtyStages.Add(int64(dirtyStages))
	now := time.Now()
	t.SpanBetween(KPatch, -1, now.Add(-d), now)
}

// CountBatch records one batched socket submission carrying dgrams
// datagrams (send or receive side alike).
func (t *Rank) CountBatch(dgrams int) {
	if t == nil {
		return
	}
	t.Batches.Add(1)
	t.BatchDgrams.Add(int64(dgrams))
}

// ObserveDgram records the wire length of one datagram (sent or received)
// into the per-rank datagram-size histogram.
func (t *Rank) ObserveDgram(bytes int) {
	if t == nil {
		return
	}
	t.DgramSizes.Observe(int64(bytes))
}

// CountResend records one retransmitted packet.
func (t *Rank) CountResend() {
	if t == nil {
		return
	}
	t.Resends.Add(1)
}

// CountCreditStall records one send that blocked waiting for in-flight
// window credits.
func (t *Rank) CountCreditStall() {
	if t == nil {
		return
	}
	t.CreditStalls.Add(1)
}

// SetLinkSource registers the transport's per-link wire-stats source for
// this rank; a later Snapshot materializes it into RankSnapshot.Links.
// Registering nil (or registering on a nil Rank) is a no-op, so wiring is
// unconditional at wrap time.
func (t *Rank) SetLinkSource(src runtime.LinkStatsSource) {
	if t == nil || src == nil {
		return
	}
	t.linkSrc.Store(linkSrcBox{src: src})
}

// LinkStats returns the registered transport's current per-link wire
// snapshot, nil when no source is registered (or the transport tracks
// nothing).
func (t *Rank) LinkStats() []runtime.LinkStats {
	if t == nil {
		return nil
	}
	box, _ := t.linkSrc.Load().(linkSrcBox)
	if box.src == nil {
		return nil
	}
	return box.src.LinkStats()
}

// SpanSince records a span of the given kind that started at start and
// ends now. Pass stage -1 for spans that are not stage-scoped.
func (t *Rank) SpanSince(k Kind, stage int, start time.Time) {
	if t == nil {
		return
	}
	t.SpanBetween(k, stage, start, time.Now())
}

// SpanMark records a span covering [prev, now) and returns now, letting
// back-to-back phases share a single clock read per boundary — the end of
// one phase is the start of the next. This is the hot-path form, and the
// core stage machine's single instrumentation seam: every exchange
// front-end (dynamic, plan-driven, learned, compiled) threads one mark
// through its per-stage phase sequence instead of reading the clock twice
// at every transition.
func (t *Rank) SpanMark(k Kind, stage int, prev time.Time) time.Time {
	if t == nil {
		return prev
	}
	now := time.Now()
	t.SpanBetween(k, stage, prev, now)
	return now
}

// SpanBetween records a span covering [start, end]. Offsets are taken
// against the registry epoch through the monotonic clock, so spans from
// different ranks land on one consistent timeline.
func (t *Rank) SpanBetween(k Kind, stage int, start, end time.Time) {
	if t == nil {
		return
	}
	sp := Span{
		Kind:  k,
		Stage: int32(stage),
		Start: start.Sub(t.epoch).Nanoseconds(),
		Dur:   end.Sub(start).Nanoseconds(),
	}
	if stage >= 0 {
		t.StageNs.Observe(sp.Dur)
	}
	i := t.cursor.Add(1) - 1
	t.spans[i&int64(len(t.spans)-1)] = sp // len is a power of two
}

// SpanCount returns the total number of spans ever recorded on this rank
// (including entries the ring has since overwritten).
func (t *Rank) SpanCount() int64 {
	if t == nil {
		return 0
	}
	return t.cursor.Load()
}

// Spans copies the retained spans oldest-first into a fresh slice. At most
// the ring capacity's worth of the most recent spans survive.
func (t *Rank) Spans() []Span {
	if t == nil {
		return nil
	}
	n := t.cursor.Load()
	cp := int64(len(t.spans))
	if n <= cp {
		return append([]Span(nil), t.spans[:n]...)
	}
	out := make([]Span, 0, cp)
	for i := n - cp; i < n; i++ {
		out = append(out, t.spans[i%cp])
	}
	return out
}

// Counters copies stage s's counters; the zero snapshot when out of range.
func (t *Rank) Counters(stage int) CounterSnapshot {
	if t == nil || stage < 0 || stage >= len(t.stages) {
		return CounterSnapshot{}
	}
	c := &t.stages[stage]
	return CounterSnapshot{
		Sends: c.Sends.Load(), SendBytes: c.SendBytes.Load(),
		Recvs: c.Recvs.Load(), RecvBytes: c.RecvBytes.Load(),
		Forwards: c.Forwards.Load(), FwdBytes: c.FwdBytes.Load(),
	}
}

// RankSnapshot is the plain-value state of one rank at snapshot time.
type RankSnapshot struct {
	Rank             int               `json:"rank"`
	Stages           []CounterSnapshot `json:"stages"`
	Barriers         int64             `json:"barriers"`
	BarrierNs        int64             `json:"barrier_ns"`
	Patches          int64             `json:"patches,omitempty"`
	PatchNs          int64             `json:"patch_ns,omitempty"`
	PatchDirtyStages int64             `json:"patch_dirty_stages,omitempty"`
	Batches          int64             `json:"batches,omitempty"`
	BatchDgrams      int64             `json:"batch_dgrams,omitempty"`
	Resends          int64             `json:"resends,omitempty"`
	CreditStalls     int64             `json:"credit_stalls,omitempty"`
	// Links is the transport's per-link wire snapshot (resends, SACK
	// repairs, smoothed RTT, ack-suppression classes, ...), present when a
	// LinkStatsSource was registered via WrapComm / SetLinkSource.
	Links []runtime.LinkStats `json:"links,omitempty"`
	// EpochOffsetNs places this rank's span timeline on the fleet's world
	// epoch: worldTime = span.Start + EpochOffsetNs. Zero within a single
	// process; set by MergeSnapshots when snapshots from processes with
	// different registry epochs are folded together.
	EpochOffsetNs int64  `json:"epoch_offset_ns,omitempty"`
	Spans         []Span `json:"-"`
	SpanCount     int64  `json:"span_count"`
}

// Snapshot is a plain-value copy of the whole registry, suitable for
// export, JSON encoding, or cross-goroutine inspection. FrameSizes and
// StageNs are the world-wide merges of the per-rank histograms.
type Snapshot struct {
	Epoch      time.Time      `json:"epoch"`
	Ranks      []RankSnapshot `json:"ranks"`
	FrameSizes HistSnapshot   `json:"frame_sizes"`
	StageNs    HistSnapshot   `json:"stage_ns"`
	DgramSizes HistSnapshot   `json:"dgram_sizes,omitempty"`
}

// Snapshot copies every rank's counters and spans. Nil-safe (returns an
// empty snapshot).
func (g *Registry) Snapshot() Snapshot {
	if g == nil {
		return Snapshot{}
	}
	s := Snapshot{
		Epoch: g.epoch,
		Ranks: make([]RankSnapshot, len(g.ranks)),
	}
	for r := range g.ranks {
		t := &g.ranks[r]
		rs := RankSnapshot{
			Rank:             r,
			Stages:           make([]CounterSnapshot, len(t.stages)),
			Barriers:         t.Barriers.Load(),
			BarrierNs:        t.BarrierNs.Load(),
			Patches:          t.Patches.Load(),
			PatchNs:          t.PatchNs.Load(),
			PatchDirtyStages: t.PatchDirtyStages.Load(),
			Batches:          t.Batches.Load(),
			BatchDgrams:      t.BatchDgrams.Load(),
			Resends:          t.Resends.Load(),
			CreditStalls:     t.CreditStalls.Load(),
			Links:            t.LinkStats(),
			Spans:            t.Spans(),
			SpanCount:        t.SpanCount(),
		}
		for d := range t.stages {
			rs.Stages[d] = t.Counters(d)
		}
		s.Ranks[r] = rs
		s.FrameSizes.merge(t.FrameSizes.Snapshot())
		s.StageNs.merge(t.StageNs.Snapshot())
		s.DgramSizes.merge(t.DgramSizes.Snapshot())
	}
	return s
}

// Totals sums a snapshot's counters across ranks and stages. A nil
// snapshot (disabled telemetry) totals to zero.
func (s *Snapshot) Totals() CounterSnapshot {
	if s == nil {
		return CounterSnapshot{}
	}
	var out CounterSnapshot
	for _, r := range s.Ranks {
		for _, c := range r.Stages {
			out.Sends += c.Sends
			out.SendBytes += c.SendBytes
			out.Recvs += c.Recvs
			out.RecvBytes += c.RecvBytes
			out.Forwards += c.Forwards
			out.FwdBytes += c.FwdBytes
		}
	}
	return out
}
