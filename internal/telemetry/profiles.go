package telemetry

import (
	"fmt"
	"os"
	gort "runtime"
	"runtime/pprof"
)

// StartProfiles starts the runtime/pprof collection both commands expose
// behind -cpuprofile/-memprofile: a CPU profile streaming to cpuPath and a
// heap profile written to memPath at stop time. Either path may be empty to
// skip that profile. The returned stop function is safe to call exactly
// once (typically deferred) and reports the first error encountered while
// finishing the profiles.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("telemetry: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("telemetry: cpu profile: %w", err)
		}
	}
	return func() error {
		var first error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				first = err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if first == nil {
					first = fmt.Errorf("telemetry: mem profile: %w", err)
				}
				return first
			}
			gort.GC() // fold transient garbage so the heap profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
				first = fmt.Errorf("telemetry: mem profile: %w", err)
			}
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}, nil
}
