package telemetry

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// seedRegistry builds a registry with a deterministic span/counter pattern:
// each rank records one gather span and one slice per stage.
func seedRegistry(t *testing.T, ranks, stages int) *Registry {
	t.Helper()
	g := MustNew(Config{Ranks: ranks, Stages: stages})
	base := g.Epoch()
	for r := 0; r < ranks; r++ {
		tr := g.Rank(r)
		tr.SpanBetween(KGather, -1, base, base.Add(time.Microsecond))
		for d := 0; d < stages; d++ {
			start := base.Add(time.Duration(d+1) * time.Microsecond)
			tr.SpanBetween(KStage, d, start, start.Add(time.Microsecond))
			tr.CountSend(d, 64)
			tr.CountForward(d, 2, 32)
		}
	}
	return g
}

func TestWriteTraceRoundTrip(t *testing.T) {
	const ranks, stages = 3, 4
	g := seedRegistry(t, ranks, stages)
	var buf bytes.Buffer
	if err := g.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	st, err := ValidateTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Tracks) != ranks {
		t.Fatalf("%d tracks, want one per rank (%d)", len(st.Tracks), ranks)
	}
	for r := 0; r < ranks; r++ {
		tr := st.Tracks[r]
		if tr == nil || !tr.Named {
			t.Fatalf("rank %d track missing or unnamed", r)
		}
		if tr.Slices != 1+stages {
			t.Fatalf("rank %d has %d slices, want %d", r, tr.Slices, 1+stages)
		}
		if tr.Kinds["gather"] != 1 || tr.Kinds["stage"] != stages {
			t.Fatalf("rank %d kinds = %v", r, tr.Kinds)
		}
		for d := 0; d < stages; d++ {
			if tr.Stages[d] != 1 {
				t.Fatalf("rank %d stage %d slice count = %d", r, d, tr.Stages[d])
			}
		}
	}
}

func TestTraceSliceArgs(t *testing.T) {
	g := seedRegistry(t, 1, 1)
	tf := buildTrace(g.Snapshot())
	var found bool
	for _, e := range tf.TraceEvents {
		if e.Ph != "X" || e.Name != "stage 0" {
			continue
		}
		found = true
		if e.Args["sends"] != int64(1) || e.Args["send_bytes"] != int64(64) || e.Args["forwards"] != int64(2) {
			t.Fatalf("stage slice args = %v", e.Args)
		}
		if e.Dur <= 0 {
			t.Fatalf("stage slice dur = %v", e.Dur)
		}
	}
	if !found {
		t.Fatal("no stage 0 slice emitted")
	}
}

func TestWriteTraceFile(t *testing.T) {
	g := seedRegistry(t, 2, 2)
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := g.WriteTraceFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateTrace(data); err != nil {
		t.Fatal(err)
	}
	if err := g.WriteTraceFile(filepath.Join(t.TempDir(), "no", "such", "dir", "x.json")); err == nil {
		t.Fatal("unwritable path should error")
	}
}

func TestValidateTraceRejects(t *testing.T) {
	mk := func(events []TraceEvent) []byte {
		b, err := json.Marshal(TraceFile{TraceEvents: events, DisplayTimeUnit: "ns"})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	cases := map[string][]byte{
		"not json":  []byte("{"),
		"no events": mk(nil),
		"no phase":  mk([]TraceEvent{{Name: "x", Ts: 1}}),
		"negative":  mk([]TraceEvent{{Name: "x", Ph: "X", Ts: -1}}),
		"unnamed":   mk([]TraceEvent{{Ph: "X", Ts: 1}}),
		"no thread": mk([]TraceEvent{{Name: "x", Ph: "X", Ts: 1, Tid: 3}}),
	}
	for name, data := range cases {
		if _, err := ValidateTrace(data); err == nil {
			t.Errorf("%s: ValidateTrace accepted invalid input", name)
		}
	}
}
