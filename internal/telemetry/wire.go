package telemetry

import (
	"encoding/binary"
	"fmt"
	"time"

	"stfw/internal/runtime"
)

// Snapshot wire format: a versioned, self-contained binary encoding of a
// Snapshot, the unit of cross-process fleet aggregation. A child process
// encodes its registry's snapshot once at exit (or on demand over a pipe /
// socket), the collector decodes and merges (see fleet.go). Binary rather
// than JSON because a snapshot carries span rings — tens of thousands of
// fixed-width records — and because a total, versioned parser is easy to
// fuzz (FuzzDecodeSnapshot) and easy to reject on skew: a collector never
// guesses at a snapshot from a different build generation.
//
// Layout (all integers little-endian):
//
//	magic    [8]byte "STFWSNAP"
//	version  uint16
//	epochNs  int64  (registry epoch, wall clock, UnixNano)
//	frameSizes, stageNs, dgramSizes  histogram
//	rankCount uint32, then per rank:
//	  rank uint32
//	  barriers barrierNs patches patchNs patchDirtyStages  int64
//	  batches batchDgrams resends creditStalls             int64
//	  epochOffsetNs spanCount                              int64
//	  stageCount uint32, then per stage 6×int64
//	  linkCount  uint32, then per link uint32 peer + 18×int64
//	  spanLen    uint32, then per span uint8 kind, int32 stage, 2×int64
//
//	histogram: count int64, sum int64, bucketLen uint32, bucketLen×int64

// SnapshotWireVersion is the current encoding generation. Bump it on any
// layout change; DecodeSnapshot rejects every other version.
const SnapshotWireVersion = 1

var snapshotMagic = [8]byte{'S', 'T', 'F', 'W', 'S', 'N', 'A', 'P'}

// linkStatsFields is the number of int64 counters one LinkStats record
// carries after its peer field. Changing runtime.LinkStats means bumping
// SnapshotWireVersion and this constant together.
const linkStatsFields = 18

// EncodeSnapshot serializes s into the versioned wire format.
func EncodeSnapshot(s Snapshot) []byte {
	// Pre-size roughly: fixed header + per-rank records; growth beyond the
	// estimate is just an append re-allocation.
	est := 64 + len(s.Ranks)*128
	for _, r := range s.Ranks {
		est += len(r.Stages)*48 + len(r.Links)*(4+8*linkStatsFields) + len(r.Spans)*21
	}
	b := make([]byte, 0, est)
	b = append(b, snapshotMagic[:]...)
	b = binary.LittleEndian.AppendUint16(b, SnapshotWireVersion)
	b = appendI64(b, s.Epoch.UnixNano())
	b = appendHist(b, s.FrameSizes)
	b = appendHist(b, s.StageNs)
	b = appendHist(b, s.DgramSizes)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s.Ranks)))
	for _, r := range s.Ranks {
		b = binary.LittleEndian.AppendUint32(b, uint32(r.Rank))
		b = appendI64(b, r.Barriers, r.BarrierNs, r.Patches, r.PatchNs, r.PatchDirtyStages)
		b = appendI64(b, r.Batches, r.BatchDgrams, r.Resends, r.CreditStalls)
		b = appendI64(b, r.EpochOffsetNs, r.SpanCount)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(r.Stages)))
		for _, c := range r.Stages {
			b = appendI64(b, c.Sends, c.SendBytes, c.Recvs, c.RecvBytes, c.Forwards, c.FwdBytes)
		}
		b = binary.LittleEndian.AppendUint32(b, uint32(len(r.Links)))
		for _, l := range r.Links {
			b = binary.LittleEndian.AppendUint32(b, uint32(l.Peer))
			b = appendI64(b,
				l.FramesSent, l.BytesSent, l.PktsSent,
				l.TimeoutResends, l.GapResends, l.SackRepairs,
				l.WindowStalls, l.BacklogHighWater, l.SRTTNs, l.RTTSamples,
				l.FramesRecvd, l.BytesRecvd, l.PktsRecvd, l.Dups,
				l.AcksSent, l.AcksSuppressed, l.StageAcks, l.LivenessAcks)
		}
		b = binary.LittleEndian.AppendUint32(b, uint32(len(r.Spans)))
		for _, sp := range r.Spans {
			b = append(b, byte(sp.Kind))
			b = binary.LittleEndian.AppendUint32(b, uint32(sp.Stage))
			b = appendI64(b, sp.Start, sp.Dur)
		}
	}
	return b
}

func appendI64(b []byte, vs ...int64) []byte {
	for _, v := range vs {
		b = binary.LittleEndian.AppendUint64(b, uint64(v))
	}
	return b
}

func appendHist(b []byte, h HistSnapshot) []byte {
	b = appendI64(b, h.Count, h.Sum)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(h.Buckets)))
	return appendI64(b, h.Buckets...)
}

// wireReader is a bounds-checked cursor over an encoded snapshot. Every
// read reports failure through err once; callers check it at section
// boundaries, so a truncated or hostile input degrades to one error, never
// a panic or a huge allocation.
type wireReader struct {
	b   []byte
	off int
	err error
}

func (r *wireReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("telemetry: decode snapshot: "+format, args...)
	}
}

func (r *wireReader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b)-r.off < n {
		r.fail("truncated at offset %d (want %d bytes, have %d)", r.off, n, len(r.b)-r.off)
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

func (r *wireReader) u8() byte {
	s := r.bytes(1)
	if s == nil {
		return 0
	}
	return s[0]
}

func (r *wireReader) u16() uint16 {
	s := r.bytes(2)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(s)
}

func (r *wireReader) u32() uint32 {
	s := r.bytes(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

func (r *wireReader) i64() int64 {
	s := r.bytes(8)
	if s == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(s))
}

// count reads a length prefix and validates it against the bytes actually
// remaining (elemSize is the minimum encoded size of one element), so a
// forged length can never drive a giant allocation.
func (r *wireReader) count(what string, elemSize int) int {
	n := r.u32()
	if r.err != nil {
		return 0
	}
	if int64(n)*int64(elemSize) > int64(len(r.b)-r.off) {
		r.fail("%s count %d exceeds remaining %d bytes", what, n, len(r.b)-r.off)
		return 0
	}
	return int(n)
}

func (r *wireReader) hist() HistSnapshot {
	h := HistSnapshot{Count: r.i64(), Sum: r.i64()}
	n := r.count("histogram buckets", 8)
	if n > histBuckets {
		r.fail("histogram has %d buckets, max %d", n, histBuckets)
		return HistSnapshot{}
	}
	for i := 0; i < n; i++ {
		h.Buckets = append(h.Buckets, r.i64())
	}
	return h
}

// DecodeSnapshot parses an encoded snapshot, rejecting bad magic, any
// version other than SnapshotWireVersion, and structurally invalid input.
// The parser is total: no input panics or allocates beyond the input size.
func DecodeSnapshot(b []byte) (Snapshot, error) {
	r := &wireReader{b: b}
	var magic [8]byte
	copy(magic[:], r.bytes(8))
	if r.err == nil && magic != snapshotMagic {
		return Snapshot{}, fmt.Errorf("telemetry: decode snapshot: bad magic %q", magic[:])
	}
	if v := r.u16(); r.err == nil && v != SnapshotWireVersion {
		return Snapshot{}, fmt.Errorf("telemetry: decode snapshot: version %d, want %d", v, SnapshotWireVersion)
	}
	var s Snapshot
	if ns := r.i64(); r.err == nil {
		s.Epoch = time.Unix(0, ns)
	}
	s.FrameSizes = r.hist()
	s.StageNs = r.hist()
	s.DgramSizes = r.hist()
	// Minimum encoded rank: rank u32 + 11 scalar int64s + three empty
	// section length prefixes.
	nRanks := r.count("rank", 4+11*8+3*4)
	for i := 0; i < nRanks && r.err == nil; i++ {
		rs := RankSnapshot{Rank: int(int32(r.u32()))}
		rs.Barriers, rs.BarrierNs = r.i64(), r.i64()
		rs.Patches, rs.PatchNs, rs.PatchDirtyStages = r.i64(), r.i64(), r.i64()
		rs.Batches, rs.BatchDgrams = r.i64(), r.i64()
		rs.Resends, rs.CreditStalls = r.i64(), r.i64()
		rs.EpochOffsetNs, rs.SpanCount = r.i64(), r.i64()
		if rs.Rank < 0 {
			r.fail("negative rank %d", rs.Rank)
			break
		}
		nStages := r.count("stage", 6*8)
		for d := 0; d < nStages; d++ {
			rs.Stages = append(rs.Stages, CounterSnapshot{
				Sends: r.i64(), SendBytes: r.i64(),
				Recvs: r.i64(), RecvBytes: r.i64(),
				Forwards: r.i64(), FwdBytes: r.i64(),
			})
		}
		nLinks := r.count("link", 4+linkStatsFields*8)
		for l := 0; l < nLinks; l++ {
			ls := runtime.LinkStats{Peer: int(int32(r.u32()))}
			ls.FramesSent, ls.BytesSent, ls.PktsSent = r.i64(), r.i64(), r.i64()
			ls.TimeoutResends, ls.GapResends, ls.SackRepairs = r.i64(), r.i64(), r.i64()
			ls.WindowStalls, ls.BacklogHighWater = r.i64(), r.i64()
			ls.SRTTNs, ls.RTTSamples = r.i64(), r.i64()
			ls.FramesRecvd, ls.BytesRecvd, ls.PktsRecvd, ls.Dups = r.i64(), r.i64(), r.i64(), r.i64()
			ls.AcksSent, ls.AcksSuppressed = r.i64(), r.i64()
			ls.StageAcks, ls.LivenessAcks = r.i64(), r.i64()
			rs.Links = append(rs.Links, ls)
		}
		nSpans := r.count("span", 1+4+2*8)
		for sp := 0; sp < nSpans; sp++ {
			rs.Spans = append(rs.Spans, Span{
				Kind:  Kind(r.u8()),
				Stage: int32(r.u32()),
				Start: r.i64(),
				Dur:   r.i64(),
			})
		}
		s.Ranks = append(s.Ranks, rs)
	}
	if r.err != nil {
		return Snapshot{}, r.err
	}
	if r.off != len(b) {
		return Snapshot{}, fmt.Errorf("telemetry: decode snapshot: %d trailing bytes", len(b)-r.off)
	}
	return s, nil
}
