package telemetry

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sync/atomic"
)

// histBuckets covers the full non-negative int64 range in power-of-two
// buckets: bucket 0 holds values <= 1, bucket i holds (2^(i-1), 2^i].
const histBuckets = 64

// Histogram is a lock-free log2 histogram. Observe is one atomic add on
// the bucket and one on the running sum — the observation count is
// derived from the buckets at snapshot time rather than maintained as a
// third hot-path atomic — so it is safe on the exchange hot path;
// negative observations clamp into bucket 0.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	sum     atomic.Int64
}

// histBucket returns the bucket index of v: ceil(log2 v) for v >= 2.
func histBucket(v int64) int {
	if v <= 1 {
		return 0
	}
	return bits.Len64(uint64(v - 1))
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[histBucket(v)].Add(1)
	h.sum.Add(v)
}

// HistSnapshot is a plain-value copy of a histogram. Buckets is truncated
// after the last non-empty bucket.
type HistSnapshot struct {
	Buckets []int64 `json:"buckets"`
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
}

// Snapshot copies the histogram counters. Count is the bucket total, so a
// snapshot racing active observers may see a sum that lags the buckets by
// in-flight observations — consistent-enough for a monitoring view.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{Sum: h.sum.Load()}
	last := -1
	var all [histBuckets]int64
	for i := range all {
		all[i] = h.buckets[i].Load()
		s.Count += all[i]
		if all[i] != 0 {
			last = i
		}
	}
	s.Buckets = append(s.Buckets, all[:last+1]...)
	return s
}

// merge folds another snapshot into s bucket-wise (used to aggregate the
// per-rank histograms into the world-wide view).
func (s *HistSnapshot) merge(o HistSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	if len(o.Buckets) > len(s.Buckets) {
		s.Buckets = append(s.Buckets, make([]int64, len(o.Buckets)-len(s.Buckets))...)
	}
	for i, n := range o.Buckets {
		s.Buckets[i] += n
	}
}

// Mean returns the arithmetic mean of the observations, 0 when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-quantile (q in [0,1]) from the bucket counts,
// resolving to the upper edge of the containing bucket — exact to within
// the 2x bucket width, which is all a log-scale summary promises.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(s.Count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, n := range s.Buckets {
		cum += n
		if cum >= target {
			if i == 0 {
				return 1
			}
			return int64(1) << uint(i)
		}
	}
	return int64(1) << uint(len(s.Buckets))
}

// render writes one histogram as an ASCII log-scale bar chart.
func (s HistSnapshot) render(w io.Writer, name, unit string) {
	fmt.Fprintf(w, "%s: n=%d mean=%.1f%s p50<=%d p99<=%d\n",
		name, s.Count, s.Mean(), unit, s.Quantile(0.5), s.Quantile(0.99))
	if s.Count == 0 {
		return
	}
	var most int64
	for _, n := range s.Buckets {
		if n > most {
			most = n
		}
	}
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		lo := int64(0)
		if i > 0 {
			lo = int64(1)<<uint(i-1) + 1
			if i == 1 {
				lo = 2
			}
		}
		bar := int(40 * n / most)
		if bar == 0 {
			bar = 1
		}
		fmt.Fprintf(w, "  %12d..%-12d %8d ", lo, int64(1)<<uint(i), n)
		for j := 0; j < bar; j++ {
			io.WriteString(w, "#")
		}
		io.WriteString(w, "\n")
	}
}

// WriteHistograms renders the registry's log-scale summaries — sent frame
// sizes and stage-scoped span latencies, merged across ranks — as plain
// text, the quick visual complement to the Perfetto trace.
func (g *Registry) WriteHistograms(w io.Writer) {
	if g == nil {
		fmt.Fprintln(w, "telemetry disabled")
		return
	}
	var frames, stages HistSnapshot
	for r := range g.ranks {
		frames.merge(g.ranks[r].FrameSizes.Snapshot())
		stages.merge(g.ranks[r].StageNs.Snapshot())
	}
	frames.render(w, "frame sizes", "B")
	stages.render(w, "stage latencies", "ns")
}
