package telemetry

import (
	"time"

	"stfw/internal/runtime"
)

// StageMapper attributes a transport tag to a communication stage. The
// core package's tag layout is supplied by the caller (core.TagStage) so
// this package stays below core in the import graph; tags the mapper
// rejects are counted into stage 0.
type StageMapper func(tag int) (stage int, ok bool)

// WrapComm returns a communicator that counts every frame c sends and
// receives into the registry's collector for c.Rank(), attributing frames
// to stages through stageOf. The wrapper preserves the optional transport
// capabilities the exchange engines rely on (runtime.AnyReceiver,
// runtime.SendRetainer) and adds barrier wait accounting. Wrapping a comm
// on a nil registry returns c unchanged.
//
// The wrapper adds a handful of atomic increments per frame and allocates
// nothing, so it can stay installed under the zero-alloc gate; both the
// pipelined and the Ordered() engine see identical semantics through it.
func (g *Registry) WrapComm(c runtime.Comm, stageOf StageMapper) runtime.Comm {
	if g == nil {
		return c
	}
	t := g.Rank(c.Rank())
	if src, ok := c.(runtime.LinkStatsSource); ok {
		// A transport with per-link wire state (udpnet, tcpnet) feeds its
		// counters into this rank's snapshots from now on.
		t.SetLinkSource(src)
	}
	return &countedComm{Comm: c, t: t, stageOf: stageOf}
}

type countedComm struct {
	runtime.Comm
	t       *Rank
	stageOf StageMapper
}

func (c *countedComm) stage(tag int) int {
	if c.stageOf == nil {
		return 0
	}
	s, ok := c.stageOf(tag)
	if !ok {
		return 0
	}
	return s
}

func (c *countedComm) Send(to, tag int, payload []byte) error {
	err := c.Comm.Send(to, tag, payload)
	if err == nil {
		c.t.CountSend(c.stage(tag), len(payload))
	}
	return err
}

func (c *countedComm) Recv(from, tag int) ([]byte, error) {
	payload, err := c.Comm.Recv(from, tag)
	if err == nil {
		c.t.CountRecv(c.stage(tag), len(payload))
	}
	return payload, err
}

// RecvAnyOf forwards arrival-order receives to the wrapped transport,
// counting matched frames; wrapping an unknown transport degrades to
// runtime.ErrNoRecvAny so runtime.RecvAnyOf falls back to the counted
// fixed-order Recv.
func (c *countedComm) RecvAnyOf(tag int, from []int) (int, []byte, error) {
	ar, ok := c.Comm.(runtime.AnyReceiver)
	if !ok {
		return -1, nil, runtime.ErrNoRecvAny
	}
	sender, payload, err := ar.RecvAnyOf(tag, from)
	if err == nil {
		c.t.CountRecv(c.stage(tag), len(payload))
	}
	return sender, payload, err
}

// SendRetains forwards the wrapped transport's buffer-ownership answer so
// pooled send buffers keep their recycling discipline through the wrapper.
func (c *countedComm) SendRetains() bool { return runtime.SendRetains(c.Comm) }

// HintTraffic forwards schedule traffic hints so a schedule-aware
// transport keeps its zero-speculation flow control under instrumentation.
func (c *countedComm) HintTraffic(stages []runtime.StageTraffic) {
	runtime.HintTraffic(c.Comm, stages)
}

// LinkStats forwards the wrapped transport's per-link wire snapshot, so
// the wrapper is as much a LinkStatsSource as the transport it counts.
func (c *countedComm) LinkStats() []runtime.LinkStats {
	return runtime.LinkStatsOf(c.Comm)
}

func (c *countedComm) Barrier() error {
	start := time.Now()
	err := c.Comm.Barrier()
	if err == nil {
		c.t.CountBarrier(time.Since(start).Nanoseconds())
	}
	return err
}

// WrapComms wraps every communicator of a world in place and returns the
// slice, the one-line form used by drivers:
//
//	runtime.Run(reg.WrapComms(w.Comms(), stageOf), fn)
func (g *Registry) WrapComms(comms []runtime.Comm, stageOf StageMapper) []runtime.Comm {
	if g == nil {
		return comms
	}
	for i, c := range comms {
		comms[i] = g.WrapComm(c, stageOf)
	}
	return comms
}
