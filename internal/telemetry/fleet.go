package telemetry

import (
	"fmt"
	"io"
	"sort"
)

// Fleet aggregation: folding per-process snapshots into one world view.
//
// Every process stamps its spans against its own registry epoch (a local
// time.Now() at registry creation), so raw span offsets from different
// processes do not share a timeline. MergeSnapshots elects the earliest
// epoch as the world epoch and records each rank's delta to it in
// RankSnapshot.EpochOffsetNs; consumers that lay spans on a timeline
// (buildTrace, StageStragglers) add the offset. The deltas come from the
// wall-clock epochs, which is exact on one host (the -procs fd-inheritance
// launcher) and as good as the clock sync between hosts — the agent/
// rendezvous runtime can substitute a measured offset without changing
// anything downstream, because the normalization point is this one field.

// MergeSnapshots folds per-process snapshots into one fleet snapshot.
// Counters and histograms sum; each rank's data is taken from the process
// that actually ran it (the one whose snapshot recorded spans or counters
// for that rank — with -procs every process carries a full-width registry
// in which only its local ranks are nonzero). Two processes claiming the
// same rank with recorded spans is a launcher bug and is rejected.
func MergeSnapshots(snaps []Snapshot) (Snapshot, error) {
	if len(snaps) == 0 {
		return Snapshot{}, fmt.Errorf("telemetry: merge of zero snapshots")
	}
	world := snaps[0].Epoch
	for _, s := range snaps[1:] {
		if s.Epoch.Before(world) {
			world = s.Epoch
		}
	}
	size := 0
	for _, s := range snaps {
		for _, r := range s.Ranks {
			if r.Rank+1 > size {
				size = r.Rank + 1
			}
		}
	}
	out := Snapshot{Epoch: world, Ranks: make([]RankSnapshot, size)}
	for i := range out.Ranks {
		out.Ranks[i].Rank = i
	}
	for _, s := range snaps {
		offset := s.Epoch.Sub(world).Nanoseconds()
		out.FrameSizes.merge(s.FrameSizes)
		out.StageNs.merge(s.StageNs)
		out.DgramSizes.merge(s.DgramSizes)
		for _, r := range s.Ranks {
			if rankSnapshotZero(&r) {
				continue // a remote rank's empty slot in this process's registry
			}
			dst := &out.Ranks[r.Rank]
			if !rankSnapshotZero(dst) {
				return Snapshot{}, fmt.Errorf("telemetry: merge: rank %d recorded by two snapshots", r.Rank)
			}
			*dst = r
			dst.EpochOffsetNs = r.EpochOffsetNs + offset
		}
	}
	return out, nil
}

// rankSnapshotZero reports whether a rank snapshot carries no recorded
// activity at all — the shape of a remote rank's slot in a full-width
// per-process registry.
func rankSnapshotZero(r *RankSnapshot) bool {
	if r.SpanCount != 0 || len(r.Links) != 0 || r.Barriers != 0 ||
		r.Batches != 0 || r.Resends != 0 || r.CreditStalls != 0 || r.Patches != 0 {
		return false
	}
	for _, c := range r.Stages {
		if c.Sends != 0 || c.Recvs != 0 || c.Forwards != 0 {
			return false
		}
	}
	return true
}

// StageStraggler is the per-stage critical-path summary: which rank was
// slowest and by how much. Busy time is the sum of a rank's stage-scoped
// span durations for the stage (KStage for engine runs; KForward+KDeliver
// for compiled replays), summed across iterations. EndNs is the latest
// span end for the stage on the world timeline (epoch offsets applied),
// i.e. when the stage's last rank finished — the fleet's critical path
// runs through these.
type StageStraggler struct {
	Stage       int     `json:"stage"`
	Ranks       int     `json:"ranks"` // ranks that recorded spans for this stage
	SlowestRank int     `json:"slowest_rank"`
	MaxNs       int64   `json:"max_ns"`
	MeanNs      int64   `json:"mean_ns"`
	MinNs       int64   `json:"min_ns"`
	Skew        float64 `json:"skew"` // MaxNs/MeanNs, the paper's max-vs-avg ratio
	EndNs       int64   `json:"end_ns"`
	EndRank     int     `json:"end_rank"`
}

// StageStragglers computes the per-stage straggler table from a
// (possibly merged) snapshot's span rings. Stages no rank recorded are
// absent; the result is ordered by stage.
func (s *Snapshot) StageStragglers() []StageStraggler {
	if s == nil {
		return nil
	}
	type rankBusy struct {
		busy  int64
		seen  bool
		end   int64
		endOk bool
	}
	// stage -> rank -> busy/end accumulation
	acc := map[int]map[int]*rankBusy{}
	for _, r := range s.Ranks {
		for _, sp := range r.Spans {
			if sp.Stage < 0 {
				continue
			}
			st := int(sp.Stage)
			m := acc[st]
			if m == nil {
				m = map[int]*rankBusy{}
				acc[st] = m
			}
			rb := m[r.Rank]
			if rb == nil {
				rb = &rankBusy{}
				m[r.Rank] = rb
			}
			rb.seen = true
			rb.busy += sp.Dur
			if end := sp.Start + sp.Dur + r.EpochOffsetNs; !rb.endOk || end > rb.end {
				rb.end, rb.endOk = end, true
			}
		}
	}
	stages := make([]int, 0, len(acc))
	for st := range acc {
		stages = append(stages, st)
	}
	sort.Ints(stages)
	out := make([]StageStraggler, 0, len(stages))
	for _, st := range stages {
		m := acc[st]
		sg := StageStraggler{Stage: st, SlowestRank: -1, EndRank: -1}
		var total int64
		for rank, rb := range m {
			sg.Ranks++
			total += rb.busy
			if sg.SlowestRank < 0 || rb.busy > sg.MaxNs {
				sg.MaxNs, sg.SlowestRank = rb.busy, rank
			}
			if sg.Ranks == 1 || rb.busy < sg.MinNs {
				sg.MinNs = rb.busy
			}
			if sg.EndRank < 0 || rb.end > sg.EndNs {
				sg.EndNs, sg.EndRank = rb.end, rank
			}
		}
		sg.MeanNs = total / int64(sg.Ranks)
		if sg.MeanNs > 0 {
			sg.Skew = float64(sg.MaxNs) / float64(sg.MeanNs)
		}
		out = append(out, sg)
	}
	return out
}

// SkewHistogram folds every stage's max-vs-mean busy-time gap (MaxNs -
// MeanNs, nanoseconds) into one log-scale distribution — the one-glance
// answer to "how ragged are the stages".
func SkewHistogram(stats []StageStraggler) HistSnapshot {
	var h Histogram
	for _, sg := range stats {
		h.Observe(sg.MaxNs - sg.MeanNs)
	}
	return h.Snapshot()
}

// WriteStragglers renders the straggler table as aligned plain text.
func WriteStragglers(w io.Writer, stats []StageStraggler) {
	if len(stats) == 0 {
		fmt.Fprintln(w, "no stage-scoped spans recorded")
		return
	}
	fmt.Fprintf(w, "%5s %6s %12s %12s %12s %6s %8s\n",
		"stage", "ranks", "max_us", "mean_us", "min_us", "skew", "slowest")
	for _, sg := range stats {
		fmt.Fprintf(w, "%5d %6d %12.1f %12.1f %12.1f %6.2f %8d\n",
			sg.Stage, sg.Ranks,
			float64(sg.MaxNs)/1e3, float64(sg.MeanNs)/1e3, float64(sg.MinNs)/1e3,
			sg.Skew, sg.SlowestRank)
	}
}
