package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func getBody(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec.Code, rec.Body.String()
}

func TestDebugHandler(t *testing.T) {
	g := seedRegistry(t, 2, 2)
	h := g.Handler()

	code, body := getBody(t, h, "/debug/")
	if code != 200 || !strings.Contains(body, "/debug/trace") {
		t.Fatalf("index: %d %q", code, body)
	}
	if code, _ := getBody(t, h, "/debug/bogus"); code != 404 {
		t.Fatalf("unknown path: %d", code)
	}

	code, body = getBody(t, h, "/debug/telemetry")
	if code != 200 {
		t.Fatalf("telemetry: %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("telemetry snapshot does not parse: %v", err)
	}
	if len(snap.Ranks) != 2 {
		t.Fatalf("snapshot has %d ranks", len(snap.Ranks))
	}

	code, body = getBody(t, h, "/debug/trace")
	if code != 200 {
		t.Fatalf("trace: %d", code)
	}
	if _, err := ValidateTrace([]byte(body)); err != nil {
		t.Fatalf("served trace invalid: %v", err)
	}

	code, body = getBody(t, h, "/debug/hist")
	if code != 200 || !strings.Contains(body, "frame sizes") {
		t.Fatalf("hist: %d %q", code, body)
	}

	if code, _ := getBody(t, h, "/debug/pprof/"); code != 200 {
		t.Fatalf("pprof index: %d", code)
	}
	if code, _ := getBody(t, h, "/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("pprof cmdline: %d", code)
	}
}

func TestNilRegistryHandler(t *testing.T) {
	var g *Registry
	h := g.Handler()
	if code, _ := getBody(t, h, "/debug/trace"); code != http.StatusServiceUnavailable {
		t.Fatalf("nil registry trace: want 503, got %d", code)
	}
	if code, body := getBody(t, h, "/debug/hist"); code != 200 || !strings.Contains(body, "disabled") {
		t.Fatalf("nil registry hist: %d %q", code, body)
	}
	if code, _ := getBody(t, h, "/debug/pprof/cmdline"); code != 200 {
		t.Fatal("pprof must work without telemetry")
	}
}

func TestServeDebug(t *testing.T) {
	g := seedRegistry(t, 1, 1)
	ds, err := g.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if ds.Addr == "" {
		t.Fatal("no bound address")
	}

	resp, err := http.Get("http://" + ds.Addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("vars: %d", resp.StatusCode)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("expvar output does not parse: %v", err)
	}
	raw, ok := vars["stfw_telemetry"]
	if !ok {
		t.Fatalf("stfw_telemetry not published; vars: %s", body)
	}
	var tele struct {
		Ranks  int             `json:"ranks"`
		Totals CounterSnapshot `json:"totals"`
	}
	if err := json.Unmarshal(raw, &tele); err != nil {
		t.Fatal(err)
	}
	if tele.Ranks != 1 || tele.Totals.Sends != 1 {
		t.Fatalf("published telemetry = %+v", tele)
	}

	if err := ds.Close(); err != nil && err != http.ErrServerClosed {
		t.Fatalf("close: %v", err)
	}
	// Close is idempotent enough for a nil server too.
	var none *DebugServer
	if err := none.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestServeDebugBadAddr(t *testing.T) {
	g := seedRegistry(t, 1, 1)
	if _, err := g.ServeDebug("256.256.256.256:99999"); err == nil {
		t.Fatal("bad address should error")
	}
}
