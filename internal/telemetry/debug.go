package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// Live inspection endpoint: a per-process HTTP mux that exposes the
// registry while a run executes. On a tcpnet cluster every process serves
// its own /debug, so a multi-machine run is inspectable mid-flight:
//
//	/debug/           index
//	/debug/vars       expvar (cmdline, memstats, and the live telemetry totals)
//	/debug/pprof/     net/http/pprof profiles
//	/debug/telemetry  JSON snapshot of all counters and histograms
//	/debug/trace      Chrome trace-event JSON of the span rings (Perfetto)
//	/debug/hist       plain-text log-scale histograms

// currentRegistry backs the process-wide expvar publication: expvar allows
// each name to be published once per process, while tests and sequential
// runs create many registries. The most recently served registry wins.
var (
	currentRegistry atomic.Pointer[Registry]
	expvarOnce      sync.Once
)

func publishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("stfw_telemetry", expvar.Func(func() any {
			g := currentRegistry.Load()
			if g == nil {
				return nil
			}
			s := g.Snapshot()
			return map[string]any{
				"ranks":       len(s.Ranks),
				"uptime_ns":   time.Since(s.Epoch).Nanoseconds(),
				"totals":      s.Totals(),
				"frame_sizes": s.FrameSizes,
				"stage_ns":    s.StageNs,
			}
		}))
	})
}

// DebugServer is a running /debug endpoint; Close stops it.
type DebugServer struct {
	Addr string // the bound address, e.g. "127.0.0.1:8642"
	srv  *http.Server
	ln   net.Listener
	done chan struct{}
}

// Handler returns the /debug mux for the registry, for callers that embed
// it into their own server. Nil-safe by construction: the mux is built
// eagerly and each telemetry route guards g itself (Snapshot and
// WriteHistograms tolerate nil; /debug/trace checks explicitly) — a shape
// the nilrecv analyzer now derives without a waiver.
func (g *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/" && r.URL.Path != "/debug" && r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "stfw debug endpoint\n\n"+
			"/debug/vars       expvar counters\n"+
			"/debug/pprof/     profiles\n"+
			"/debug/telemetry  counter snapshot (JSON)\n"+
			"/debug/trace      trace-event JSON (open in ui.perfetto.dev)\n"+
			"/debug/hist       log-scale histograms (text)\n")
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/telemetry", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		s := g.Snapshot()
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		if g == nil {
			http.Error(w, "telemetry disabled", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		g.WriteTrace(w)
	})
	mux.HandleFunc("/debug/hist", func(w http.ResponseWriter, r *http.Request) {
		g.WriteHistograms(w)
	})
	return mux
}

// FleetHandler serves an already-merged fleet snapshot (see
// MergeSnapshots) the way Handler serves a live registry — one endpoint
// for the whole multi-process world:
//
//	/debug/fleet            merged snapshot (JSON)
//	/debug/fleet/trace      merged trace-event JSON, world-epoch timeline
//	/debug/fleet/straggler  per-stage critical-path table (text)
//	/debug/fleet/hist       merged log-scale histograms (text)
func FleetHandler(s Snapshot) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/fleet", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s)
	})
	mux.HandleFunc("/debug/fleet/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		WriteSnapshotTrace(w, s)
	})
	mux.HandleFunc("/debug/fleet/straggler", func(w http.ResponseWriter, r *http.Request) {
		WriteStragglers(w, s.StageStragglers())
	})
	mux.HandleFunc("/debug/fleet/hist", func(w http.ResponseWriter, r *http.Request) {
		s.FrameSizes.render(w, "frame sizes", "B")
		s.StageNs.render(w, "stage latencies", "ns")
		s.DgramSizes.render(w, "datagram sizes", "B")
	})
	return mux
}

// ServeFleetDebug binds addr and serves the fleet endpoints for a merged
// snapshot until Close — the collector-side counterpart of ServeDebug.
func ServeFleetDebug(addr string, s Snapshot) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: fleet debug listen %s: %w", addr, err)
	}
	ds := &DebugServer{
		Addr: ln.Addr().String(),
		srv:  &http.Server{Handler: FleetHandler(s)},
		ln:   ln,
		done: make(chan struct{}),
	}
	go func() {
		defer close(ds.done)
		ds.srv.Serve(ln)
	}()
	return ds, nil
}

// ServeDebug binds addr (e.g. "127.0.0.1:0" for an ephemeral port) and
// serves the /debug mux for this registry until Close. It also publishes
// the registry's totals under the expvar name "stfw_telemetry". Nil-safe:
// a nil registry still serves pprof and expvar, with telemetry routes
// reporting disabled — so -debug-addr works even without -telemetry.
func (g *Registry) ServeDebug(addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: debug listen %s: %w", addr, err)
	}
	if g != nil {
		currentRegistry.Store(g)
	}
	publishExpvar()
	ds := &DebugServer{
		Addr: ln.Addr().String(),
		srv:  &http.Server{Handler: g.Handler()},
		ln:   ln,
		done: make(chan struct{}),
	}
	go func() {
		defer close(ds.done)
		ds.srv.Serve(ln)
	}()
	return ds, nil
}

// Close stops the server and waits for its serve loop to exit.
func (d *DebugServer) Close() error {
	if d == nil {
		return nil
	}
	err := d.srv.Close()
	<-d.done
	return err
}
