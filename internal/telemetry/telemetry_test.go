package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNewValidation(t *testing.T) {
	cases := []Config{
		{Ranks: 0, Stages: 1},
		{Ranks: -1, Stages: 1},
		{Ranks: 1, Stages: 0},
		{Ranks: 1, Stages: 1, SpanCap: -3},
	}
	for _, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v): want error", cfg)
		}
	}
	g, err := New(Config{Ranks: 2, Stages: 3})
	if err != nil {
		t.Fatal(err)
	}
	if g.Ranks() != 2 || g.Stages() != 3 {
		t.Fatalf("got %d ranks %d stages, want 2/3", g.Ranks(), g.Stages())
	}
	if g.Epoch().IsZero() {
		t.Fatal("epoch not set")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew on invalid config did not panic")
		}
	}()
	MustNew(Config{})
}

// TestNilSafety exercises every exported method on nil receivers: the
// disabled path must be a no-op, never a panic.
func TestNilSafety(t *testing.T) {
	var g *Registry
	if g.Ranks() != 0 || g.Stages() != 0 || !g.Epoch().IsZero() {
		t.Error("nil registry accessors not zero")
	}
	if g.Rank(0) != nil {
		t.Error("nil registry returned a rank")
	}
	s := g.Snapshot()
	if len(s.Ranks) != 0 {
		t.Error("nil registry snapshot not empty")
	}
	var sb strings.Builder
	g.WriteHistograms(&sb)
	if !strings.Contains(sb.String(), "disabled") {
		t.Error("nil registry histogram dump should say disabled")
	}
	if err := g.WriteTrace(&sb); err == nil {
		t.Error("nil registry WriteTrace should error")
	}

	var r *Rank
	r.CountSend(0, 10)
	r.CountRecv(0, 10)
	r.CountForward(0, 1, 10)
	r.CountBarrier(5)
	r.SpanSince(KStage, 0, time.Now())
	r.SpanBetween(KGather, -1, time.Now(), time.Now())
	if r.SpanCount() != 0 || r.Spans() != nil {
		t.Error("nil rank recorded spans")
	}
	if (r.Counters(0) != CounterSnapshot{}) {
		t.Error("nil rank has counters")
	}

	var h *Histogram
	h.Observe(4)
	if h.Snapshot().Count != 0 {
		t.Error("nil histogram counted")
	}
}

func TestRankOutOfRange(t *testing.T) {
	g := MustNew(Config{Ranks: 2, Stages: 1})
	if g.Rank(-1) != nil || g.Rank(2) != nil {
		t.Fatal("out-of-range rank lookup should be nil")
	}
	if g.Rank(1) == nil {
		t.Fatal("in-range rank lookup is nil")
	}
}

func TestCountersAndSnapshot(t *testing.T) {
	g := MustNew(Config{Ranks: 2, Stages: 3})
	r0 := g.Rank(0)
	r0.CountSend(1, 100)
	r0.CountSend(1, 50)
	r0.CountRecv(1, 80)
	r0.CountForward(2, 3, 24)
	r0.CountBarrier(500)
	g.Rank(1).CountSend(0, 7)

	c := r0.Counters(1)
	want := CounterSnapshot{Sends: 2, SendBytes: 150, Recvs: 1, RecvBytes: 80}
	if c != want {
		t.Fatalf("stage 1 counters = %+v, want %+v", c, want)
	}
	if f := r0.Counters(2); f.Forwards != 3 || f.FwdBytes != 24 {
		t.Fatalf("stage 2 forwards = %+v", f)
	}
	if (r0.Counters(99) != CounterSnapshot{}) {
		t.Fatal("out-of-range Counters not zero")
	}

	s := g.Snapshot()
	tot := s.Totals()
	if tot.Sends != 3 || tot.SendBytes != 157 || tot.Recvs != 1 || tot.Forwards != 3 {
		t.Fatalf("totals = %+v", tot)
	}
	if s.Ranks[0].Barriers != 1 || s.Ranks[0].BarrierNs != 500 {
		t.Fatalf("barrier counters = %+v", s.Ranks[0])
	}
	if s.FrameSizes.Count != 3 {
		t.Fatalf("frame size histogram saw %d frames, want 3", s.FrameSizes.Count)
	}
}

// TestStageSlotFolding: out-of-range stage indices land on the edge slots
// rather than panicking.
func TestStageSlotFolding(t *testing.T) {
	g := MustNew(Config{Ranks: 1, Stages: 2})
	r := g.Rank(0)
	r.CountSend(-5, 1)
	r.CountSend(99, 2)
	if c := r.Counters(0); c.Sends != 1 {
		t.Fatalf("stage 0 (folded from -5) sends = %d", c.Sends)
	}
	if c := r.Counters(1); c.Sends != 1 {
		t.Fatalf("stage 1 (folded from 99) sends = %d", c.Sends)
	}
}

func TestSpanRing(t *testing.T) {
	g := MustNew(Config{Ranks: 1, Stages: 1, SpanCap: 4})
	r := g.Rank(0)
	base := g.Epoch()
	for i := 0; i < 6; i++ {
		start := base.Add(time.Duration(i) * time.Millisecond)
		r.SpanBetween(KStage, 0, start, start.Add(time.Millisecond))
	}
	if r.SpanCount() != 6 {
		t.Fatalf("span count = %d, want 6", r.SpanCount())
	}
	spans := r.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want ring cap 4", len(spans))
	}
	// Oldest-first: spans 2..5 survive.
	for i, sp := range spans {
		want := int64((i + 2)) * int64(time.Millisecond)
		if sp.Start != want {
			t.Fatalf("span %d start = %d, want %d", i, sp.Start, want)
		}
		if sp.Dur != int64(time.Millisecond) {
			t.Fatalf("span %d dur = %d", i, sp.Dur)
		}
	}
	if g.Snapshot().StageNs.Count != 6 {
		t.Fatal("stage-scoped spans should feed the latency histogram")
	}
}

// TestSpanConcurrent hammers one rank's ring from several goroutines; run
// under -race this locks down the atomic-cursor claim discipline.
func TestSpanConcurrent(t *testing.T) {
	g := MustNew(Config{Ranks: 1, Stages: 1, SpanCap: 64})
	r := g.Rank(0)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.SpanSince(KForward, 0, time.Now())
				r.CountSend(0, 8)
			}
		}()
	}
	wg.Wait()
	if r.SpanCount() != 2000 {
		t.Fatalf("span count = %d, want 2000", r.SpanCount())
	}
	if c := r.Counters(0); c.Sends != 2000 {
		t.Fatalf("sends = %d, want 2000", c.Sends)
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KGather: "gather", KExchange: "exchange", KKernel: "kernel",
		KReduce: "reduce", KStage: "stage", KForward: "forward",
		KDeliver: "deliver", Kind(200): "Kind(200)",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("Kind %d = %q, want %q", k, k.String(), want)
		}
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 4, 100, 1000, -7} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 8 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Sum != 1110 {
		t.Fatalf("sum = %d", s.Sum)
	}
	// Buckets: <=1 gets 0,1,-7 → 3; (1,2] → 1; (2,4] → 2; (64,128] → 1;
	// (512,1024] → 1.
	if s.Buckets[0] != 3 || s.Buckets[1] != 1 || s.Buckets[2] != 2 {
		t.Fatalf("low buckets = %v", s.Buckets[:3])
	}
	if got := s.Mean(); got != 1110.0/8 {
		t.Fatalf("mean = %v", got)
	}
	if q := s.Quantile(0.5); q != 2 {
		t.Fatalf("p50 = %d, want 2", q)
	}
	if q := s.Quantile(1); q != 1024 {
		t.Fatalf("p100 = %d, want 1024", q)
	}
	if q := s.Quantile(-1); q != 1 {
		t.Fatalf("clamped p(-1) = %d, want bucket-0 edge 1", q)
	}
	var empty HistSnapshot
	if empty.Mean() != 0 || empty.Quantile(0.9) != 0 {
		t.Fatal("empty snapshot moments should be zero")
	}
}

func TestHistMerge(t *testing.T) {
	a := HistSnapshot{Buckets: []int64{1, 2}, Count: 3, Sum: 5}
	b := HistSnapshot{Buckets: []int64{0, 1, 0, 4}, Count: 5, Sum: 40}
	a.merge(b)
	if a.Count != 8 || a.Sum != 45 {
		t.Fatalf("merged moments = %d/%d", a.Count, a.Sum)
	}
	want := []int64{1, 3, 0, 4}
	if len(a.Buckets) != len(want) {
		t.Fatalf("merged buckets = %v", a.Buckets)
	}
	for i := range want {
		if a.Buckets[i] != want[i] {
			t.Fatalf("merged buckets = %v, want %v", a.Buckets, want)
		}
	}
	var empty HistSnapshot
	empty.merge(HistSnapshot{})
	if empty.Count != 0 || len(empty.Buckets) != 0 {
		t.Fatal("empty merge mutated")
	}
}

func TestHistBucketEdges(t *testing.T) {
	cases := map[int64]int{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11}
	for v, want := range cases {
		if got := histBucket(v); got != want {
			t.Errorf("histBucket(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestWriteHistograms(t *testing.T) {
	g := MustNew(Config{Ranks: 1, Stages: 1})
	g.Rank(0).CountSend(0, 64)
	g.Rank(0).SpanBetween(KStage, 0, g.Epoch(), g.Epoch().Add(time.Microsecond))
	var sb strings.Builder
	g.WriteHistograms(&sb)
	out := sb.String()
	for _, want := range []string{"frame sizes", "stage latencies", "n=1", "#"} {
		if !strings.Contains(out, want) {
			t.Fatalf("histogram dump missing %q:\n%s", want, out)
		}
	}
}
