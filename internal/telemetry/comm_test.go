package telemetry

import (
	"errors"
	"testing"

	"stfw/internal/runtime"
)

// fakeComm is a minimal loopback transport for wrapper tests: Send succeeds
// (or fails when told to), Recv replies with a canned payload.
type fakeComm struct {
	rank, size int
	reply      []byte
	failSend   error
	sends      int
	barriers   int
}

func (f *fakeComm) Rank() int { return f.rank }
func (f *fakeComm) Size() int { return f.size }
func (f *fakeComm) Send(to, tag int, payload []byte) error {
	if f.failSend != nil {
		return f.failSend
	}
	f.sends++
	return nil
}
func (f *fakeComm) Recv(from, tag int) ([]byte, error) { return f.reply, nil }
func (f *fakeComm) Barrier() error                     { f.barriers++; return nil }

// anyComm adds arrival-order receive support on top of fakeComm.
type anyComm struct {
	fakeComm
	anySender int
}

func (a *anyComm) RecvAnyOf(tag int, from []int) (int, []byte, error) {
	return a.anySender, a.reply, nil
}

func TestWrapCommNilRegistry(t *testing.T) {
	var g *Registry
	c := &fakeComm{rank: 0, size: 1}
	if got := g.WrapComm(c, nil); got != runtime.Comm(c) {
		t.Fatal("nil registry should return the comm unchanged")
	}
	comms := []runtime.Comm{c}
	if got := g.WrapComms(comms, nil); got[0] != runtime.Comm(c) {
		t.Fatal("nil registry WrapComms should be identity")
	}
}

func TestWrapCommCounts(t *testing.T) {
	g := MustNew(Config{Ranks: 2, Stages: 4})
	stageOf := func(tag int) (int, bool) {
		if tag < 0 {
			return 0, false
		}
		return tag, true
	}
	f := &fakeComm{rank: 1, size: 2, reply: make([]byte, 96)}
	c := g.WrapComm(f, stageOf)

	if c.Rank() != 1 || c.Size() != 2 {
		t.Fatal("wrapper must preserve identity")
	}
	if err := c.Send(0, 2, make([]byte, 40)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recv(0, 3); err != nil {
		t.Fatal(err)
	}
	if err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
	// Unmapped tag folds into stage 0.
	if err := c.Send(0, -9, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}

	r := g.Rank(1)
	if cs := r.Counters(2); cs.Sends != 1 || cs.SendBytes != 40 {
		t.Fatalf("stage 2 counters = %+v", cs)
	}
	if cs := r.Counters(3); cs.Recvs != 1 || cs.RecvBytes != 96 {
		t.Fatalf("stage 3 counters = %+v", cs)
	}
	if cs := r.Counters(0); cs.Sends != 1 || cs.SendBytes != 8 {
		t.Fatalf("unmapped tag counters = %+v", cs)
	}
	if r.Barriers.Load() != 1 || r.BarrierNs.Load() < 0 {
		t.Fatalf("barrier accounting = %d/%dns", r.Barriers.Load(), r.BarrierNs.Load())
	}
	if g.Snapshot().FrameSizes.Count != 2 {
		t.Fatal("both sends should hit the frame-size histogram")
	}
}

func TestWrapCommFailedSendNotCounted(t *testing.T) {
	g := MustNew(Config{Ranks: 1, Stages: 1})
	boom := errors.New("boom")
	c := g.WrapComm(&fakeComm{rank: 0, size: 1, failSend: boom}, nil)
	if err := c.Send(0, 0, []byte{1}); !errors.Is(err, boom) {
		t.Fatalf("send error = %v", err)
	}
	if cs := g.Rank(0).Counters(0); cs.Sends != 0 {
		t.Fatalf("failed send was counted: %+v", cs)
	}
}

func TestWrapCommRecvAny(t *testing.T) {
	g := MustNew(Config{Ranks: 3, Stages: 2})

	// Underlying transport supports arrival-order receive: delegate + count.
	a := &anyComm{fakeComm: fakeComm{rank: 2, size: 3, reply: make([]byte, 16)}, anySender: 1}
	c := g.WrapComm(a, func(tag int) (int, bool) { return 1, true })
	src, payload, err := runtime.RecvAnyOf(c, 7, []int{0, 1})
	if err != nil || src != 1 || len(payload) != 16 {
		t.Fatalf("RecvAnyOf = %d/%d bytes/%v", src, len(payload), err)
	}
	if cs := g.Rank(2).Counters(1); cs.Recvs != 1 || cs.RecvBytes != 16 {
		t.Fatalf("counted = %+v", cs)
	}

	// Plain transport: wrapper reports ErrNoRecvAny, runtime falls back to
	// the counted fixed-order Recv.
	p := g.WrapComm(&fakeComm{rank: 0, size: 3, reply: make([]byte, 8)}, nil)
	ar, ok := p.(runtime.AnyReceiver)
	if !ok {
		t.Fatal("wrapper should advertise AnyReceiver")
	}
	if _, _, err := ar.RecvAnyOf(7, []int{1}); !errors.Is(err, runtime.ErrNoRecvAny) {
		t.Fatalf("want ErrNoRecvAny, got %v", err)
	}
	src, payload, err = runtime.RecvAnyOf(p, 7, []int{1})
	if err != nil || src != 1 || len(payload) != 8 {
		t.Fatalf("fallback RecvAnyOf = %d/%d bytes/%v", src, len(payload), err)
	}
	if cs := g.Rank(0).Counters(0); cs.Recvs != 1 {
		t.Fatalf("fallback recv not counted: %+v", cs)
	}
}

func TestWrapCommSendRetains(t *testing.T) {
	g := MustNew(Config{Ranks: 1, Stages: 1})
	c := g.WrapComm(&fakeComm{rank: 0, size: 1}, nil)
	sr, ok := c.(runtime.SendRetainer)
	if !ok {
		t.Fatal("wrapper should advertise SendRetainer")
	}
	// fakeComm is not a SendRetainer, so the conservative answer is true.
	if !sr.SendRetains() {
		t.Fatal("unknown transport should report retaining sends")
	}
}
