package telemetry

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"stfw/internal/runtime"
)

// wireTestSnapshot builds a snapshot exercising every section of the wire
// format: world histograms, per-rank scalars, stage counters, link stats,
// and spans (including a non-stage-scoped one with Stage -1).
func wireTestSnapshot() Snapshot {
	return Snapshot{
		Epoch: time.Unix(0, 1_700_000_000_123_456_789),
		FrameSizes: HistSnapshot{
			Count: 3, Sum: 900, Buckets: []int64{0, 1, 2},
		},
		StageNs:    HistSnapshot{Count: 1, Sum: 42, Buckets: []int64{1}},
		DgramSizes: HistSnapshot{},
		Ranks: []RankSnapshot{
			{
				Rank:     0,
				Barriers: 2, BarrierNs: 1000,
				Patches: 1, PatchNs: 500, PatchDirtyStages: 3,
				Batches: 7, BatchDgrams: 21, Resends: 4, CreditStalls: 1,
				EpochOffsetNs: 0, SpanCount: 2,
				Stages: []CounterSnapshot{
					{Sends: 5, SendBytes: 1280, Recvs: 5, RecvBytes: 1280, Forwards: 2, FwdBytes: 512},
					{Sends: 3, SendBytes: 768, Recvs: 3, RecvBytes: 768},
				},
				Links: []runtime.LinkStats{{
					Peer: 1, FramesSent: 10, BytesSent: 2900, PktsSent: 9,
					TimeoutResends: 1, GapResends: 2, SackRepairs: 1,
					WindowStalls: 1, BacklogHighWater: 6,
					SRTTNs: 150_000, RTTSamples: 8,
					FramesRecvd: 10, BytesRecvd: 2900, PktsRecvd: 11, Dups: 2,
					AcksSent: 4, AcksSuppressed: 6, StageAcks: 3, LivenessAcks: 1,
				}},
				Spans: []Span{
					{Kind: KStage, Stage: 0, Start: 100, Dur: 50},
					{Kind: KExchange, Stage: -1, Start: 200, Dur: 10},
				},
			},
			{
				Rank:          3, // ranks need not be dense
				EpochOffsetNs: 2_000_000,
				SpanCount:     1,
				Spans:         []Span{{Kind: KStage, Stage: 1, Start: 400, Dur: 25}},
			},
		},
	}
}

func TestSnapshotWireRoundTrip(t *testing.T) {
	want := wireTestSnapshot()
	b := EncodeSnapshot(want)
	got, err := DecodeSnapshot(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Epoch.Equal(want.Epoch) {
		t.Fatalf("epoch %v != %v", got.Epoch, want.Epoch)
	}
	// Compare the rest structurally with the epochs normalized (time.Time
	// representations may differ even when Equal).
	got.Epoch, want.Epoch = time.Time{}, time.Time{}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestSnapshotWireRoundTripEmpty(t *testing.T) {
	want := Snapshot{Epoch: time.Unix(0, 7)}
	got, err := DecodeSnapshot(EncodeSnapshot(want))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Ranks) != 0 || !got.Epoch.Equal(want.Epoch) {
		t.Fatalf("empty round trip: %+v", got)
	}
}

// TestDecodeSnapshotRejects drives the parser's rejection paths: bad
// magic, version skew, every possible truncation point, trailing garbage,
// and a forged section count. None may panic; all must error.
func TestDecodeSnapshotRejects(t *testing.T) {
	good := EncodeSnapshot(wireTestSnapshot())

	if _, err := DecodeSnapshot(nil); err == nil {
		t.Error("nil input accepted")
	}
	bad := append([]byte(nil), good...)
	bad[0] = 'X'
	if _, err := DecodeSnapshot(bad); err == nil {
		t.Error("bad magic accepted")
	}
	bad = append([]byte(nil), good...)
	binary.LittleEndian.PutUint16(bad[8:], SnapshotWireVersion+1)
	if _, err := DecodeSnapshot(bad); err == nil {
		t.Error("future version accepted — collectors must reject build skew")
	}
	for n := 0; n < len(good); n++ {
		if _, err := DecodeSnapshot(good[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes accepted", n, len(good))
		}
	}
	if _, err := DecodeSnapshot(append(append([]byte(nil), good...), 0)); err == nil {
		t.Error("trailing byte accepted")
	}
	// Forge the rank count to a huge value: the length-vs-remaining check
	// must refuse before any allocation happens.
	bad = append([]byte(nil), good...)
	off := 8 + 2 + 8         // magic + version + epoch
	for i := 0; i < 3; i++ { // skip the three histograms
		bl := binary.LittleEndian.Uint32(bad[off+16:])
		off += 16 + 4 + int(bl)*8
	}
	binary.LittleEndian.PutUint32(bad[off:], 1<<31)
	if _, err := DecodeSnapshot(bad); err == nil {
		t.Error("forged rank count accepted")
	}
}

// TestMergeSnapshotsOffsets is the fleet-normalization regression test:
// two processes with epochs 5ms apart merge onto the earliest epoch, and
// the later process's ranks carry the delta in EpochOffsetNs.
func TestMergeSnapshotsOffsets(t *testing.T) {
	base := time.Unix(0, 1_700_000_000_000_000_000)
	mk := func(epoch time.Time, rank int) Snapshot {
		return Snapshot{
			Epoch:      epoch,
			FrameSizes: HistSnapshot{Count: 1, Sum: 10, Buckets: []int64{1}},
			Ranks: []RankSnapshot{{
				Rank: rank, SpanCount: 1,
				Spans: []Span{{Kind: KStage, Stage: 0, Start: 100, Dur: 50}},
			}},
		}
	}
	a := mk(base.Add(5*time.Millisecond), 0) // later process holds rank 0
	b := mk(base, 1)
	merged, err := MergeSnapshots([]Snapshot{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if !merged.Epoch.Equal(base) {
		t.Fatalf("world epoch %v, want the earliest %v", merged.Epoch, base)
	}
	if len(merged.Ranks) != 2 {
		t.Fatalf("merged world has %d ranks, want 2", len(merged.Ranks))
	}
	if got := merged.Ranks[0].EpochOffsetNs; got != 5_000_000 {
		t.Errorf("rank 0 offset %d ns, want 5000000", got)
	}
	if got := merged.Ranks[1].EpochOffsetNs; got != 0 {
		t.Errorf("rank 1 offset %d ns, want 0", got)
	}
	if merged.FrameSizes.Count != 2 || merged.FrameSizes.Sum != 20 {
		t.Errorf("histograms did not sum: %+v", merged.FrameSizes)
	}

	if _, err := MergeSnapshots(nil); err == nil {
		t.Error("merge of zero snapshots accepted")
	}
	if _, err := MergeSnapshots([]Snapshot{a, mk(base, 0)}); err == nil {
		t.Error("two processes claiming rank 0 accepted")
	}
}

// TestTraceEpochOffsets pins the world-timeline normalization in the
// trace export: spans from a rank with a nonzero EpochOffsetNs shift by
// exactly that offset, so slices from different processes line up.
func TestTraceEpochOffsets(t *testing.T) {
	snap := Snapshot{
		Epoch: time.Unix(0, 1),
		Ranks: []RankSnapshot{
			{Rank: 0, SpanCount: 1, EpochOffsetNs: 0,
				Spans: []Span{{Kind: KStage, Stage: 0, Start: 1_000, Dur: 500}}},
			{Rank: 1, SpanCount: 1, EpochOffsetNs: 2_000_000,
				Spans: []Span{{Kind: KStage, Stage: 0, Start: 1_000, Dur: 500}}},
		},
	}
	var buf bytes.Buffer
	if err := WriteSnapshotTrace(&buf, snap); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateTrace(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	var tf TraceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatal(err)
	}
	ts := map[int]float64{}
	for _, e := range tf.TraceEvents {
		if e.Ph == "X" {
			ts[e.Tid] = e.Ts
		}
	}
	if got, want := ts[0], 1.0; got != want {
		t.Errorf("rank 0 slice at %g us, want %g", got, want)
	}
	if got, want := ts[1], 2001.0; got != want {
		t.Errorf("rank 1 slice at %g us, want %g (offset applied)", got, want)
	}
}

// FuzzDecodeSnapshot fuzzes the wire parser: arbitrary input must never
// panic, and any input that decodes must re-encode canonically (decode ∘
// encode is the identity on decoded values).
func FuzzDecodeSnapshot(f *testing.F) {
	f.Add(EncodeSnapshot(wireTestSnapshot()))
	f.Add(EncodeSnapshot(Snapshot{Epoch: time.Unix(0, 7)}))
	f.Add([]byte("STFWSNAP"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		b2 := EncodeSnapshot(s)
		s2, err := DecodeSnapshot(b2)
		if err != nil {
			t.Fatalf("re-encoded snapshot does not decode: %v", err)
		}
		if !s2.Epoch.Equal(s.Epoch) {
			t.Fatalf("epoch drifted across re-encode: %v != %v", s2.Epoch, s.Epoch)
		}
		s.Epoch, s2.Epoch = time.Time{}, time.Time{}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("decode/encode not stable:\n got %+v\nwant %+v", s2, s)
		}
	})
}
