package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Chrome trace-event export: the snapshot's spans rendered in the Trace
// Event Format (the JSON Perfetto and chrome://tracing load). One process
// represents the world, one thread per rank is one track, and every span
// is one complete ("X") slice, named by its kind and stage. Timestamps are
// microseconds since the world epoch: each rank's EpochOffsetNs (zero for
// single-process snapshots, set by MergeSnapshots for fleet merges) shifts
// its spans onto the shared timeline, so slices from all ranks — across
// process boundaries — line up and the per-stage skew between ranks, the
// paper's max-vs-avg story, is directly visible as ragged slice edges.

// TraceEvent is one entry of the "traceEvents" array. Fields follow the
// Trace Event Format; Ts and Dur are microseconds.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// TraceFile is the top-level JSON object WriteTrace emits.
type TraceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// buildTrace converts a snapshot into trace-event form.
func buildTrace(s Snapshot) *TraceFile {
	tf := &TraceFile{DisplayTimeUnit: "ns"}
	tf.TraceEvents = append(tf.TraceEvents, TraceEvent{
		Name: "process_name", Ph: "M", Pid: 0,
		Args: map[string]any{"name": "stfw world"},
	})
	for _, r := range s.Ranks {
		tf.TraceEvents = append(tf.TraceEvents, TraceEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: r.Rank,
			Args: map[string]any{"name": fmt.Sprintf("rank %d", r.Rank)},
		})
		tf.TraceEvents = append(tf.TraceEvents, TraceEvent{
			Name: "thread_sort_index", Ph: "M", Pid: 0, Tid: r.Rank,
			Args: map[string]any{"sort_index": r.Rank},
		})
		for _, sp := range r.Spans {
			name := sp.Kind.String()
			args := map[string]any{"kind": name}
			if sp.Stage >= 0 {
				name = fmt.Sprintf("%s %d", name, sp.Stage)
				args["stage"] = int(sp.Stage)
				c := s.Ranks[r.Rank].Stages
				if int(sp.Stage) < len(c) {
					args["sends"] = c[sp.Stage].Sends
					args["send_bytes"] = c[sp.Stage].SendBytes
					args["forwards"] = c[sp.Stage].Forwards
				}
			}
			tf.TraceEvents = append(tf.TraceEvents, TraceEvent{
				Name: name, Cat: "stfw", Ph: "X",
				Ts:  float64(sp.Start+r.EpochOffsetNs) / 1e3,
				Dur: float64(sp.Dur) / 1e3,
				Pid: 0, Tid: r.Rank, Args: args,
			})
		}
	}
	return tf
}

// WriteTrace renders the registry's current snapshot as Chrome trace-event
// JSON: open the output in https://ui.perfetto.dev (or chrome://tracing)
// to see one track per rank with one slice per recorded span.
func (g *Registry) WriteTrace(w io.Writer) error {
	if g == nil {
		return fmt.Errorf("telemetry: trace export on a disabled registry")
	}
	return WriteSnapshotTrace(w, g.Snapshot())
}

// WriteSnapshotTrace renders an already-taken snapshot — typically a fleet
// merge, whose per-rank epoch offsets place every process's spans on the
// world timeline — as Chrome trace-event JSON.
func WriteSnapshotTrace(w io.Writer, s Snapshot) error {
	enc := json.NewEncoder(w)
	return enc.Encode(buildTrace(s))
}

// WriteTraceFile writes the trace JSON to path (0644).
func (g *Registry) WriteTraceFile(path string) error {
	if g == nil {
		return fmt.Errorf("telemetry: trace export on a disabled registry")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// TraceStats summarizes a validated trace: which rank tracks exist and how
// many slices of each kind each track carries, plus the distinct stage
// indices seen per track. Tests use it to assert "one track per rank, one
// slice per stage".
type TraceStats struct {
	Tracks map[int]*TrackStats
}

// TrackStats is the per-rank-track part of TraceStats.
type TrackStats struct {
	Named  bool           // a thread_name metadata record exists
	Slices int            // complete ("X") events
	Kinds  map[string]int // slice count by kind arg
	Stages map[int]int    // slice count by stage arg (stage-scoped slices only)
}

// ValidateTrace parses trace-event JSON produced by WriteTrace (or any
// conforming producer) and checks the structural invariants Perfetto
// relies on: a traceEvents array, every event carrying a phase, complete
// events with non-negative ts/dur, and slices bound to a named track.
func ValidateTrace(data []byte) (*TraceStats, error) {
	var tf TraceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		return nil, fmt.Errorf("telemetry: trace does not parse: %w", err)
	}
	if len(tf.TraceEvents) == 0 {
		return nil, fmt.Errorf("telemetry: trace has no events")
	}
	st := &TraceStats{Tracks: map[int]*TrackStats{}}
	track := func(tid int) *TrackStats {
		tr := st.Tracks[tid]
		if tr == nil {
			tr = &TrackStats{Kinds: map[string]int{}, Stages: map[int]int{}}
			st.Tracks[tid] = tr
		}
		return tr
	}
	for i, e := range tf.TraceEvents {
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" {
				track(e.Tid).Named = true
			}
		case "X":
			if e.Ts < 0 || e.Dur < 0 {
				return nil, fmt.Errorf("telemetry: event %d: negative ts/dur", i)
			}
			if e.Name == "" {
				return nil, fmt.Errorf("telemetry: event %d: unnamed slice", i)
			}
			tr := track(e.Tid)
			tr.Slices++
			if k, ok := e.Args["kind"].(string); ok {
				tr.Kinds[k]++
			}
			if v, ok := e.Args["stage"]; ok {
				if f, ok := v.(float64); ok {
					tr.Stages[int(f)]++
				}
			}
		case "":
			return nil, fmt.Errorf("telemetry: event %d: missing phase", i)
		}
	}
	for tid, tr := range st.Tracks {
		if tr.Slices > 0 && !tr.Named {
			return nil, fmt.Errorf("telemetry: track %d has slices but no thread_name", tid)
		}
	}
	return st, nil
}
