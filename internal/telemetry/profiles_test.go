package telemetry

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := StartProfiles(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to write.
	x := 0
	for i := 0; i < 1e6; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}

func TestStartProfilesDisabled(t *testing.T) {
	stop, err := StartProfiles("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartProfilesBadPath(t *testing.T) {
	if _, err := StartProfiles(filepath.Join(t.TempDir(), "no", "dir", "c.pprof"), ""); err == nil {
		t.Fatal("unwritable cpu path should error")
	}
	stop, err := StartProfiles("", filepath.Join(t.TempDir(), "no", "dir", "m.pprof"))
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err == nil {
		t.Fatal("unwritable mem path should error at stop")
	}
}
