package msg

import (
	"math/bits"
	"sync"
)

// Frame arena: process-wide sync.Pools of encode/receive buffers for the
// exchange hot path. The ordered legacy engine allocates a fresh copy of
// every frame it sends; the pipelined engine instead encodes into pooled
// buffers and recycles them once no one references the bytes any more —
// after Send returns on copying transports, or on the receiving rank once
// the exchange has scattered (and, for deliveries, copied) the frame's
// submessages on retaining transports.
//
// Buffers are pooled in power-of-two size classes. Frame sizes in one
// exchange span orders of magnitude (empty frames are a dozen bytes,
// hot-spot aggregation frames reach megabytes); a single mixed pool would
// let small requests consume large buffers and force large requests to
// allocate — and zero — fresh ones every time. Class i holds buffers with
// capacity in [2^i, 2^(i+1)), so a Get from class i always satisfies
// requests up to 2^i.
//
// Ownership discipline: a buffer obtained from GetFrame/GetFrameCap/
// GetFrameLen has a single owner at any time. Passing it to Comm.Send
// transfers ownership to the transport when runtime.SendRetains(c) reports
// true (the receiving rank releases it); otherwise the sender releases it
// itself. Because Decode aliases submessage data into the frame buffer, any
// data that must outlive the buffer has to be copied out before PutFrame.
const (
	frameClasses    = 32
	defaultFrameCap = 4096
)

var framePools [frameClasses]sync.Pool

// boxPool recycles the *[]byte headers the frame pools store, so PutFrame
// does not heap-allocate a fresh box for every recycled buffer (pointer
// values cross the sync.Pool interface without allocating; slice headers do
// not). Boxes circulate between boxPool and framePools indefinitely.
var boxPool = sync.Pool{New: func() any { return new([]byte) }}

// frameClass returns the pool class whose buffers all have capacity >= n.
func frameClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1)) // ceil(log2 n)
}

// GetFrame returns a zero-length pooled buffer of the default capacity;
// append into it (e.g. with Encode) and release it with PutFrame when done.
// When the encoded size is known in advance, prefer GetFrameCap.
func GetFrame() []byte { return GetFrameCap(defaultFrameCap) }

// GetFrameCap returns a zero-length pooled buffer with capacity at least n.
// Encoding a frame whose size is known (EncodedSize) into such a buffer
// never grows it, which keeps the hot path free of realloc-and-copy cycles.
func GetFrameCap(n int) []byte {
	c := frameClass(n)
	if c >= frameClasses {
		return make([]byte, 0, n)
	}
	if bp, ok := framePools[c].Get().(*[]byte); ok {
		b := (*bp)[:0]
		*bp = nil
		boxPool.Put(bp)
		return b
	}
	return make([]byte, 0, 1<<c)
}

// GetFrameLen returns a pooled buffer resized to length n (contents
// unspecified), for transports that read a known-length frame off the wire.
func GetFrameLen(n int) []byte {
	return GetFrameCap(n)[:n]
}

// PutFrame recycles a buffer into the arena. The caller must not use b — or
// any data aliasing it, such as submessages decoded from it — afterwards.
func PutFrame(b []byte) {
	cp := cap(b)
	if cp == 0 {
		return
	}
	c := bits.Len(uint(cp)) - 1 // floor(log2 cap): all of class c fits in it
	if c >= frameClasses {
		return
	}
	bp := boxPool.Get().(*[]byte)
	*bp = b[:0]
	framePools[c].Put(bp)
}
