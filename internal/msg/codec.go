package msg

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire format (little-endian):
//
//	message frame:
//	  uint32 from
//	  uint32 to
//	  uint32 nsubs
//	  nsubs * submessage
//	submessage:
//	  uint32 src
//	  uint32 dst
//	  uint32 len(data)
//	  data bytes
//
// The format is self-delimiting given the frame length, which transports
// carry out-of-band (channel transport: slice length; TCP transport: a
// uint32 length prefix).
const (
	msgHeaderLen = 12
	subHeaderLen = 12
)

// Exported aliases for code that computes payload offsets inside a frame
// without going through Encode/Decode (compiled replay templates).
const (
	MsgHeaderLen = msgHeaderLen
	SubHeaderLen = subHeaderLen
)

// ErrTruncated reports a frame shorter than its declared contents.
var ErrTruncated = errors.New("msg: truncated frame")

// EncodedSize returns the exact number of bytes Encode will append for m,
// so hot paths can obtain a frame buffer of the right capacity up front
// instead of growing one append at a time.
func EncodedSize(m *Message) int {
	n := msgHeaderLen + len(m.Subs)*subHeaderLen
	for _, s := range m.Subs {
		n += len(s.Data)
	}
	return n
}

// Encode appends the wire encoding of m to dst and returns the extended
// slice.
func Encode(dst []byte, m *Message) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(m.From))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(m.To))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(m.Subs)))
	for _, s := range m.Subs {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(s.Src))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(s.Dst))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s.Data)))
		dst = append(dst, s.Data...)
	}
	return dst
}

// Decode parses a frame produced by Encode. Submessage data aliases the
// input buffer; callers that retain payloads past the buffer's lifetime must
// copy them.
func Decode(b []byte) (*Message, error) {
	m := &Message{}
	if err := DecodeInto(m, b); err != nil {
		return nil, err
	}
	return m, nil
}

// DecodeInto parses a frame produced by Encode into m, reusing m.Subs'
// capacity across calls (the exchange hot path decodes one frame per
// neighbor per stage into the same scratch Message). On error m is left in
// an unspecified state. Submessage data aliases b, exactly as with Decode;
// a caller that reuses m must have copied out (or finished with) the
// previous frame's submessages first.
func DecodeInto(m *Message, b []byte) error {
	if len(b) < msgHeaderLen {
		return ErrTruncated
	}
	m.From = int(binary.LittleEndian.Uint32(b[0:]))
	m.To = int(binary.LittleEndian.Uint32(b[4:]))
	nsubs := int(binary.LittleEndian.Uint32(b[8:]))
	const maxSubs = 1 << 28
	if nsubs < 0 || nsubs > maxSubs {
		return fmt.Errorf("msg: implausible submessage count %d", nsubs)
	}
	b = b[msgHeaderLen:]
	if cap(m.Subs) >= nsubs {
		m.Subs = m.Subs[:0]
	} else {
		m.Subs = make([]Submessage, 0, nsubs)
	}
	for i := 0; i < nsubs; i++ {
		if len(b) < subHeaderLen {
			return ErrTruncated
		}
		s := Submessage{
			Src: int(binary.LittleEndian.Uint32(b[0:])),
			Dst: int(binary.LittleEndian.Uint32(b[4:])),
		}
		dlen := int(binary.LittleEndian.Uint32(b[8:]))
		b = b[subHeaderLen:]
		if dlen < 0 || len(b) < dlen {
			return ErrTruncated
		}
		s.Data = b[:dlen:dlen]
		b = b[dlen:]
		m.Subs = append(m.Subs, s)
	}
	if len(b) != 0 {
		return fmt.Errorf("msg: %d trailing bytes after frame", len(b))
	}
	return nil
}
