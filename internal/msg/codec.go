package msg

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire format (little-endian):
//
//	message frame:
//	  uint32 from
//	  uint32 to
//	  uint32 nsubs
//	  nsubs * submessage
//	submessage:
//	  uint32 src
//	  uint32 dst
//	  uint32 len(data)
//	  data bytes
//
// The format is self-delimiting given the frame length, which transports
// carry out-of-band (channel transport: slice length; TCP transport: a
// uint32 length prefix).
const (
	msgHeaderLen = 12
	subHeaderLen = 12
)

// ErrTruncated reports a frame shorter than its declared contents.
var ErrTruncated = errors.New("msg: truncated frame")

// Encode appends the wire encoding of m to dst and returns the extended
// slice.
func Encode(dst []byte, m *Message) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(m.From))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(m.To))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(m.Subs)))
	for _, s := range m.Subs {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(s.Src))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(s.Dst))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s.Data)))
		dst = append(dst, s.Data...)
	}
	return dst
}

// Decode parses a frame produced by Encode. Submessage data aliases the
// input buffer; callers that retain payloads past the buffer's lifetime must
// copy them.
func Decode(b []byte) (*Message, error) {
	if len(b) < msgHeaderLen {
		return nil, ErrTruncated
	}
	m := &Message{
		From: int(binary.LittleEndian.Uint32(b[0:])),
		To:   int(binary.LittleEndian.Uint32(b[4:])),
	}
	nsubs := int(binary.LittleEndian.Uint32(b[8:]))
	const maxSubs = 1 << 28
	if nsubs < 0 || nsubs > maxSubs {
		return nil, fmt.Errorf("msg: implausible submessage count %d", nsubs)
	}
	b = b[msgHeaderLen:]
	m.Subs = make([]Submessage, 0, nsubs)
	for i := 0; i < nsubs; i++ {
		if len(b) < subHeaderLen {
			return nil, ErrTruncated
		}
		s := Submessage{
			Src: int(binary.LittleEndian.Uint32(b[0:])),
			Dst: int(binary.LittleEndian.Uint32(b[4:])),
		}
		dlen := int(binary.LittleEndian.Uint32(b[8:]))
		b = b[subHeaderLen:]
		if dlen < 0 || len(b) < dlen {
			return nil, ErrTruncated
		}
		s.Data = b[:dlen:dlen]
		b = b[dlen:]
		m.Subs = append(m.Subs, s)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("msg: %d trailing bytes after frame", len(b))
	}
	return m, nil
}
