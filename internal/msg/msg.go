// Package msg defines the message model of the store-and-forward scheme:
// submessages (the original point-to-point payloads, each a (source,
// destination, data) triple), messages (the direct frames exchanged between
// VPT neighbors, each carrying a list of submessages), and the per-stage
// forward buffers fwbuf[d][x] of Algorithm 1.
package msg

import (
	"fmt"
	"slices"
)

// Submessage is an original point-to-point payload travelling through the
// VPT: the data rank Src wants delivered to rank Dst. Intermediate processes
// never inspect Data; they only read Dst to pick the forwarding stage.
type Submessage struct {
	Src  int
	Dst  int
	Data []byte
}

// WireLen returns the number of bytes the submessage occupies inside an
// encoded message frame (header plus payload).
func (s Submessage) WireLen() int { return subHeaderLen + len(s.Data) }

// Message is one direct frame communicated between a pair of neighboring
// processes in some stage: an ordered list of submessages.
type Message struct {
	From int
	To   int
	Subs []Submessage
}

// PayloadBytes returns the total payload (submessage data) carried, which is
// what the paper's volume metric counts.
func (m *Message) PayloadBytes() int {
	n := 0
	for _, s := range m.Subs {
		n += len(s.Data)
	}
	return n
}

// WireLen returns the encoded frame size including all headers.
func (m *Message) WireLen() int {
	n := msgHeaderLen
	for _, s := range m.Subs {
		n += s.WireLen()
	}
	return n
}

// ForwardBuffers is the fwbuf structure of Algorithm 1: fwbuf[d][x] holds
// the submessages that will be forwarded in stage d to the dimension-d
// neighbor whose digit d equals x. Buffers are indexed by dimension then by
// digit value.
type ForwardBuffers struct {
	dims []int
	buf  [][][]Submessage // [d][x][i]
}

// NewForwardBuffers allocates empty buffers for a topology with the given
// dimension sizes.
func NewForwardBuffers(dims []int) *ForwardBuffers {
	fb := &ForwardBuffers{dims: append([]int(nil), dims...)}
	fb.buf = make([][][]Submessage, len(dims))
	for d, k := range dims {
		fb.buf[d] = make([][]Submessage, k)
	}
	return fb
}

// Put appends a submessage to fwbuf[d][x].
func (fb *ForwardBuffers) Put(d, x int, s Submessage) {
	fb.buf[d][x] = append(fb.buf[d][x], s)
}

// Take removes and returns the contents of fwbuf[d][x]. It returns nil when
// the buffer is empty. After a buffer has been used for communication in
// stage d it is never refilled (Algorithm 1's single-pass discipline), which
// Take enforces by leaving the slot empty.
func (fb *ForwardBuffers) Take(d, x int) []Submessage {
	s := fb.buf[d][x]
	fb.buf[d][x] = nil
	return s
}

// Reserve grows fwbuf[d][x] to capacity n without changing its contents.
// The static core.Plan knows the exact final occupancy of every buffer (the
// submessage count of the frame sent from it), so a planned exchange can
// pre-size its buffers and avoid append growth on the hot path.
func (fb *ForwardBuffers) Reserve(d, x, n int) {
	if cur := fb.buf[d][x]; cap(cur) < n {
		grown := make([]Submessage, len(cur), n)
		copy(grown, cur)
		fb.buf[d][x] = grown
	}
}

// Peek returns the contents of fwbuf[d][x] without removing them.
func (fb *ForwardBuffers) Peek(d, x int) []Submessage { return fb.buf[d][x] }

// Dims returns the dimension sizes the buffers were created with.
func (fb *ForwardBuffers) Dims() []int { return append([]int(nil), fb.dims...) }

// PayloadBytes returns the total payload currently stored across all
// buffers; together with in-flight frames this drives the paper's buffer
// size metric.
func (fb *ForwardBuffers) PayloadBytes() int {
	n := 0
	for d := range fb.buf {
		for x := range fb.buf[d] {
			for _, s := range fb.buf[d][x] {
				n += len(s.Data)
			}
		}
	}
	return n
}

// SubCount returns the number of submessages currently stored.
func (fb *ForwardBuffers) SubCount() int {
	n := 0
	for d := range fb.buf {
		for x := range fb.buf[d] {
			n += len(fb.buf[d][x])
		}
	}
	return n
}

// SortSubs orders submessages deterministically (by Src then Dst). The
// algorithm does not require any order; tests and the static router use it
// to compare executions.
func SortSubs(subs []Submessage) {
	slices.SortFunc(subs, func(a, b Submessage) int {
		if a.Src != b.Src {
			return a.Src - b.Src
		}
		return a.Dst - b.Dst
	})
}

// CompactSubs copies every submessage payload into one fresh contiguous
// arena, rebinding Data in place. Engines that deliver payloads aliasing
// pooled (recyclable) frame buffers call it before releasing the frames, so
// the delivered result outlives the arena buffers it was decoded from. One
// allocation regardless of submessage count.
func CompactSubs(subs []Submessage) {
	total := 0
	for _, s := range subs {
		total += len(s.Data)
	}
	if total == 0 {
		return
	}
	arena := make([]byte, 0, total)
	for i := range subs {
		if len(subs[i].Data) == 0 {
			continue
		}
		start := len(arena)
		arena = append(arena, subs[i].Data...)
		subs[i].Data = arena[start:len(arena):len(arena)]
	}
}

// Validate performs basic sanity checks on a frame against a world size.
func (m *Message) Validate(worldSize int) error {
	if m.From < 0 || m.From >= worldSize || m.To < 0 || m.To >= worldSize {
		return fmt.Errorf("msg: frame endpoints (%d -> %d) out of range [0,%d)", m.From, m.To, worldSize)
	}
	for _, s := range m.Subs {
		if s.Src < 0 || s.Src >= worldSize || s.Dst < 0 || s.Dst >= worldSize {
			return fmt.Errorf("msg: submessage endpoints (%d -> %d) out of range [0,%d)", s.Src, s.Dst, worldSize)
		}
	}
	return nil
}
