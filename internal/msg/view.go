package msg

import "unsafe"

// hostLittleEndian reports whether the host's native byte order matches the
// wire format (little-endian). On the common platforms (amd64, arm64,
// riscv64, wasm) it is true and float64 payloads can be read and written in
// place; on a big-endian host every view request falls back to the
// byte-by-byte codec.
var hostLittleEndian = func() bool {
	var probe uint16 = 1
	return *(*byte)(unsafe.Pointer(&probe)) == 1
}()

// Float64View reinterprets b as a []float64 without copying, when that is
// representable: the host is little-endian (matching the wire format), b's
// length is a multiple of 8, and b's data is 8-byte aligned. Otherwise it
// returns ok == false and the caller must fall back to the binary codec.
//
// The view aliases b: writes through the view change b and vice versa, and
// the view must not outlive b. Alignment depends on the submessage's byte
// offset inside its frame, so callers must treat a false result as routine,
// not exceptional.
func Float64View(b []byte) ([]float64, bool) {
	if !hostLittleEndian || len(b)%8 != 0 {
		return nil, false
	}
	if len(b) == 0 {
		return nil, true
	}
	p := unsafe.Pointer(unsafe.SliceData(b))
	if uintptr(p)%unsafe.Alignof(float64(0)) != 0 {
		return nil, false
	}
	return unsafe.Slice((*float64)(p), len(b)/8), true
}
