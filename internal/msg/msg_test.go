package msg

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestMessageSizes(t *testing.T) {
	m := &Message{
		From: 1,
		To:   2,
		Subs: []Submessage{
			{Src: 1, Dst: 5, Data: []byte("hello")},
			{Src: 3, Dst: 2, Data: nil},
			{Src: 1, Dst: 7, Data: []byte{1, 2, 3}},
		},
	}
	if got := m.PayloadBytes(); got != 8 {
		t.Errorf("PayloadBytes = %d, want 8", got)
	}
	want := msgHeaderLen + 3*subHeaderLen + 8
	if got := m.WireLen(); got != want {
		t.Errorf("WireLen = %d, want %d", got, want)
	}
	if got := len(Encode(nil, m)); got != want {
		t.Errorf("encoded length = %d, want WireLen %d", got, want)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := &Message{
		From: 12,
		To:   40,
		Subs: []Submessage{
			{Src: 12, Dst: 3, Data: []byte("abc")},
			{Src: 9, Dst: 40, Data: []byte{}},
			{Src: 0, Dst: 63, Data: bytes.Repeat([]byte{0xAB}, 1000)},
		},
	}
	got, err := Decode(Encode(nil, m))
	if err != nil {
		t.Fatal(err)
	}
	if got.From != m.From || got.To != m.To || len(got.Subs) != len(m.Subs) {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range m.Subs {
		if got.Subs[i].Src != m.Subs[i].Src || got.Subs[i].Dst != m.Subs[i].Dst {
			t.Errorf("sub %d endpoints mismatch", i)
		}
		if !bytes.Equal(got.Subs[i].Data, m.Subs[i].Data) {
			t.Errorf("sub %d data mismatch", i)
		}
	}
}

func TestDecodeEmptySubs(t *testing.T) {
	m := &Message{From: 0, To: 1}
	got, err := Decode(Encode(nil, m))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Subs) != 0 {
		t.Errorf("expected no subs, got %d", len(got.Subs))
	}
}

func TestDecodeErrors(t *testing.T) {
	m := &Message{From: 1, To: 2, Subs: []Submessage{{Src: 1, Dst: 2, Data: []byte("xyz")}}}
	enc := Encode(nil, m)
	for cut := 0; cut < len(enc); cut++ {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Errorf("Decode of %d/%d bytes should fail", cut, len(enc))
		}
	}
	// Trailing garbage must be rejected.
	if _, err := Decode(append(append([]byte(nil), enc...), 0xFF)); err == nil {
		t.Error("Decode with trailing byte should fail")
	}
}

func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(from, to uint16, payloads [][]byte, srcs []uint16) bool {
		m := &Message{From: int(from), To: int(to)}
		for i, p := range payloads {
			src, dst := 0, 1
			if len(srcs) > 0 {
				src = int(srcs[i%len(srcs)])
				dst = int(srcs[(i+1)%len(srcs)])
			}
			m.Subs = append(m.Subs, Submessage{Src: src, Dst: dst, Data: p})
		}
		got, err := Decode(Encode(nil, m))
		if err != nil {
			return false
		}
		if got.From != m.From || got.To != m.To || len(got.Subs) != len(m.Subs) {
			return false
		}
		for i := range m.Subs {
			a, b := got.Subs[i], m.Subs[i]
			if a.Src != b.Src || a.Dst != b.Dst || !bytes.Equal(a.Data, b.Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestForwardBuffers(t *testing.T) {
	fb := NewForwardBuffers([]int{4, 2})
	fb.Put(0, 3, Submessage{Src: 0, Dst: 7, Data: []byte("aa")})
	fb.Put(0, 3, Submessage{Src: 1, Dst: 7, Data: []byte("b")})
	fb.Put(1, 0, Submessage{Src: 2, Dst: 4, Data: []byte("cccc")})
	if fb.SubCount() != 3 {
		t.Errorf("SubCount = %d", fb.SubCount())
	}
	if fb.PayloadBytes() != 7 {
		t.Errorf("PayloadBytes = %d", fb.PayloadBytes())
	}
	if got := fb.Peek(0, 3); len(got) != 2 {
		t.Errorf("Peek len = %d", len(got))
	}
	got := fb.Take(0, 3)
	if len(got) != 2 {
		t.Fatalf("Take len = %d", len(got))
	}
	if fb.Take(0, 3) != nil {
		t.Error("Take must drain the buffer")
	}
	if fb.SubCount() != 1 {
		t.Errorf("SubCount after Take = %d", fb.SubCount())
	}
	if got := fb.Dims(); !reflect.DeepEqual(got, []int{4, 2}) {
		t.Errorf("Dims = %v", got)
	}
}

func TestSortSubs(t *testing.T) {
	subs := []Submessage{
		{Src: 2, Dst: 1}, {Src: 0, Dst: 9}, {Src: 2, Dst: 0}, {Src: 0, Dst: 3},
	}
	SortSubs(subs)
	want := []Submessage{{Src: 0, Dst: 3}, {Src: 0, Dst: 9}, {Src: 2, Dst: 0}, {Src: 2, Dst: 1}}
	for i := range want {
		if subs[i].Src != want[i].Src || subs[i].Dst != want[i].Dst {
			t.Fatalf("order wrong at %d: %+v", i, subs)
		}
	}
}

func TestValidate(t *testing.T) {
	ok := &Message{From: 0, To: 3, Subs: []Submessage{{Src: 0, Dst: 3}}}
	if err := ok.Validate(4); err != nil {
		t.Errorf("valid frame rejected: %v", err)
	}
	for _, bad := range []*Message{
		{From: -1, To: 0},
		{From: 0, To: 4},
		{From: 0, To: 0, Subs: []Submessage{{Src: 5, Dst: 0}}},
		{From: 0, To: 0, Subs: []Submessage{{Src: 0, Dst: -2}}},
	} {
		if err := bad.Validate(4); err == nil {
			t.Errorf("invalid frame accepted: %+v", bad)
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := &Message{From: 0, To: 1}
	for i := 0; i < 64; i++ {
		data := make([]byte, 64)
		rng.Read(data)
		m.Subs = append(m.Subs, Submessage{Src: i, Dst: i + 1, Data: data})
	}
	buf := make([]byte, 0, m.WireLen())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = Encode(buf[:0], m)
	}
}

func BenchmarkDecode(b *testing.B) {
	m := &Message{From: 0, To: 1}
	for i := 0; i < 64; i++ {
		m.Subs = append(m.Subs, Submessage{Src: i, Dst: i + 1, Data: make([]byte, 64)})
	}
	enc := Encode(nil, m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}
