package msg

import (
	"encoding/binary"
	"math"
	"testing"
)

func TestFloat64ViewRoundTrip(t *testing.T) {
	if !hostLittleEndian {
		t.Skip("big-endian host: views are never granted")
	}
	vals := []float64{0, 1, -1, math.Pi, math.Inf(1), math.SmallestNonzeroFloat64}
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	v, ok := Float64View(b)
	if !ok {
		t.Fatalf("aligned word-sized buffer refused a view")
	}
	for i := range vals {
		if math.Float64bits(v[i]) != math.Float64bits(vals[i]) {
			t.Fatalf("view[%d] = %v, want %v", i, v[i], vals[i])
		}
	}
	// Writes through the view must land in the backing bytes.
	v[2] = 42.5
	if got := math.Float64frombits(binary.LittleEndian.Uint64(b[16:])); got != 42.5 {
		t.Fatalf("write through view not visible in bytes: %v", got)
	}
}

func TestFloat64ViewRefusals(t *testing.T) {
	b := make([]byte, 32)
	if _, ok := Float64View(b[:12]); ok {
		t.Fatalf("non-word-multiple length granted a view")
	}
	if _, ok := Float64View(b[4:28]); ok {
		t.Fatalf("misaligned buffer granted a view")
	}
	if v, ok := Float64View(nil); !ok || len(v) != 0 {
		t.Fatalf("empty buffer should view as an empty slice")
	}
	if v, ok := Float64View(b[1:1]); !ok || len(v) != 0 {
		t.Fatalf("zero-length buffer should view as an empty slice regardless of alignment")
	}
}
