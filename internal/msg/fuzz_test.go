package msg

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzDecode exercises the frame decoder with arbitrary bytes: it must
// never panic, and any frame it accepts must re-encode to the identical
// byte string (decode-encode round trip).
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(Encode(nil, &Message{From: 1, To: 2}))
	f.Add(Encode(nil, &Message{From: 0, To: 3, Subs: []Submessage{
		{Src: 0, Dst: 3, Data: []byte("abc")},
		{Src: 7, Dst: 3, Data: nil},
	}}))
	corrupt := Encode(nil, &Message{From: 9, To: 9, Subs: []Submessage{{Src: 1, Dst: 2, Data: make([]byte, 100)}}})
	corrupt[8] = 0xFF // implausible submessage count
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		re := Encode(nil, m)
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not inverse: %d bytes in, %d bytes out", len(data), len(re))
		}
	})
}

// FuzzEncodeDecode drives the opposite direction with structured inputs.
func FuzzEncodeDecode(f *testing.F) {
	f.Add(0, 1, []byte("hello"), 3, 4)
	f.Add(100, 200, []byte{}, 0, 0)
	f.Fuzz(func(t *testing.T, from, to int, data []byte, src, dst int) {
		if from < 0 || to < 0 || src < 0 || dst < 0 ||
			from > 1<<30 || to > 1<<30 || src > 1<<30 || dst > 1<<30 {
			return
		}
		m := &Message{From: from, To: to, Subs: []Submessage{{Src: src, Dst: dst, Data: data}}}
		got, err := Decode(Encode(nil, m))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if got.From != from || got.To != to || len(got.Subs) != 1 {
			t.Fatal("header mismatch")
		}
		if got.Subs[0].Src != src || got.Subs[0].Dst != dst || !bytes.Equal(got.Subs[0].Data, data) {
			t.Fatal("submessage mismatch")
		}
	})
}

// FuzzDecodeInto exercises the scratch-reusing decoder the pipelined engine
// runs on its hot path: decoding a new frame into a Message that already
// holds a previous frame's submessages must never panic, must agree with
// the fresh-allocation Decode, and must never leak the previous frame's
// submessages into the result (buffer reuse must not alias stale data).
func FuzzDecodeInto(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add(
		Encode(nil, &Message{From: 1, To: 2, Subs: []Submessage{
			{Src: 1, Dst: 2, Data: []byte("first-frame-payload")},
			{Src: 3, Dst: 2, Data: []byte("x")},
		}}),
		Encode(nil, &Message{From: 4, To: 2, Subs: []Submessage{
			{Src: 4, Dst: 2, Data: []byte("second")},
		}}),
	)
	// Truncated second frame: the header promises more submessages than the
	// buffer carries.
	trunc := Encode(nil, &Message{From: 0, To: 1, Subs: []Submessage{{Src: 0, Dst: 1, Data: make([]byte, 64)}}})
	f.Add(Encode(nil, &Message{From: 5, To: 1}), trunc[:len(trunc)-10])
	// Oversized declared length: a submessage claiming more data than
	// follows.
	over := Encode(nil, &Message{From: 2, To: 3, Subs: []Submessage{{Src: 2, Dst: 3, Data: []byte("abcd")}}})
	binary.LittleEndian.PutUint32(over[msgHeaderLen+8:], 1<<20)
	f.Add([]byte{}, over)
	// Implausible submessage count.
	huge := Encode(nil, &Message{From: 0, To: 0})
	binary.LittleEndian.PutUint32(huge[8:], 1<<29)
	f.Add([]byte{}, huge)

	f.Fuzz(func(t *testing.T, first, second []byte) {
		var scratch Message
		// Prime the scratch with the first frame (errors are fine — scratch
		// is then in an unspecified but non-nil state, which is exactly what
		// the engine's reuse produces after a rejected frame).
		_ = DecodeInto(&scratch, first)

		err2 := DecodeInto(&scratch, second)
		fresh, errFresh := Decode(second)
		if (err2 == nil) != (errFresh == nil) {
			t.Fatalf("DecodeInto err=%v, Decode err=%v", err2, errFresh)
		}
		if err2 != nil {
			return
		}
		if scratch.From != fresh.From || scratch.To != fresh.To || len(scratch.Subs) != len(fresh.Subs) {
			t.Fatalf("reused decode differs from fresh decode")
		}
		for i := range fresh.Subs {
			a, b := scratch.Subs[i], fresh.Subs[i]
			if a.Src != b.Src || a.Dst != b.Dst || !bytes.Equal(a.Data, b.Data) {
				t.Fatalf("submessage %d: reused decode (%d->%d %x) != fresh (%d->%d %x)",
					i, a.Src, a.Dst, a.Data, b.Src, b.Dst, b.Data)
			}
		}
		// The result must re-encode to the input, proving no stale
		// submessage from the first frame leaked into the reused slice.
		if re := Encode(nil, &scratch); !bytes.Equal(re, second) {
			t.Fatalf("reused decode re-encodes to %d bytes, input was %d", len(re), len(second))
		}
	})
}

// FuzzPooledRoundTrip drives the frame arena the way the pipelined engine
// does: encode into a pooled buffer, decode, copy the payloads out, release
// the buffer, immediately reuse it for a different frame — the copied-out
// payloads of the first frame must survive unchanged. This is the aliasing
// discipline PutFrame's contract demands (Decode aliases the frame buffer,
// so data must be copied before release).
func FuzzPooledRoundTrip(f *testing.F) {
	f.Add([]byte("payload-one"), []byte("payload-two-longer-than-one"), 3, 5)
	f.Add([]byte{}, []byte{0xff}, 0, 1)
	f.Fuzz(func(t *testing.T, dataA, dataB []byte, src, dst int) {
		if src < 0 || dst < 0 || src > 1<<30 || dst > 1<<30 {
			return
		}
		mA := &Message{From: src, To: dst, Subs: []Submessage{{Src: src, Dst: dst, Data: dataA}}}
		buf := Encode(GetFrame(), mA)

		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		// Copy out before release, as the engine's copyDelivered step does.
		copied := append([]byte(nil), got.Subs[0].Data...)
		PutFrame(buf)

		// Reuse the arena for a second, different frame; with a single-P
		// fuzz worker this is very likely the same backing array.
		mB := &Message{From: dst, To: src, Subs: []Submessage{{Src: dst, Dst: src, Data: dataB}}}
		buf2 := Encode(GetFrame(), mB)
		defer PutFrame(buf2)

		if !bytes.Equal(copied, dataA) {
			t.Fatalf("copied payload corrupted after buffer reuse: got %x, want %x", copied, dataA)
		}
		got2, err := Decode(buf2)
		if err != nil || !bytes.Equal(got2.Subs[0].Data, dataB) {
			t.Fatalf("second frame corrupted: %v", err)
		}
	})
}
