package msg

import (
	"bytes"
	"testing"
)

// FuzzDecode exercises the frame decoder with arbitrary bytes: it must
// never panic, and any frame it accepts must re-encode to the identical
// byte string (decode-encode round trip).
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(Encode(nil, &Message{From: 1, To: 2}))
	f.Add(Encode(nil, &Message{From: 0, To: 3, Subs: []Submessage{
		{Src: 0, Dst: 3, Data: []byte("abc")},
		{Src: 7, Dst: 3, Data: nil},
	}}))
	corrupt := Encode(nil, &Message{From: 9, To: 9, Subs: []Submessage{{Src: 1, Dst: 2, Data: make([]byte, 100)}}})
	corrupt[8] = 0xFF // implausible submessage count
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		re := Encode(nil, m)
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not inverse: %d bytes in, %d bytes out", len(data), len(re))
		}
	})
}

// FuzzEncodeDecode drives the opposite direction with structured inputs.
func FuzzEncodeDecode(f *testing.F) {
	f.Add(0, 1, []byte("hello"), 3, 4)
	f.Add(100, 200, []byte{}, 0, 0)
	f.Fuzz(func(t *testing.T, from, to int, data []byte, src, dst int) {
		if from < 0 || to < 0 || src < 0 || dst < 0 ||
			from > 1<<30 || to > 1<<30 || src > 1<<30 || dst > 1<<30 {
			return
		}
		m := &Message{From: from, To: to, Subs: []Submessage{{Src: src, Dst: dst, Data: data}}}
		got, err := Decode(Encode(nil, m))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if got.From != from || got.To != to || len(got.Subs) != 1 {
			t.Fatal("header mismatch")
		}
		if got.Subs[0].Src != src || got.Subs[0].Dst != dst || !bytes.Equal(got.Subs[0].Data, data) {
			t.Fatal("submessage mismatch")
		}
	})
}
