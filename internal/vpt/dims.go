package vpt

import (
	"fmt"
	"sort"
)

// This file extends the Section 5 topology-formation scheme in the two
// directions the paper mentions but does not explore: process counts that
// are not powers of two ("our methodology and algorithms can easily be
// extended"), and deliberately skewed dimension sizes, which trade a worse
// maximum message count for less forwarding (lower volume).

// primeFactors returns the prime factorization of v in ascending order.
func primeFactors(v int) []int {
	var fs []int
	for p := 2; p*p <= v; p++ {
		for v%p == 0 {
			fs = append(fs, p)
			v /= p
		}
	}
	if v > 1 {
		fs = append(fs, v)
	}
	return fs
}

// NewFactored builds an n-dimensional topology for an arbitrary K >= 2 by
// distributing K's prime factors over the dimensions as evenly as possible
// (largest factors to the currently smallest dimension), generalizing
// NewBalanced beyond powers of two. It fails if K has fewer than n prime
// factors (counted with multiplicity), since every dimension needs size at
// least 2.
func NewFactored(K, n int) (*Topology, error) {
	if K < 2 {
		return nil, fmt.Errorf("vpt: K must be >= 2, got %d", K)
	}
	if n < 1 {
		return nil, fmt.Errorf("vpt: n must be >= 1, got %d", n)
	}
	fs := primeFactors(K)
	if len(fs) < n {
		return nil, fmt.Errorf("vpt: K=%d has only %d prime factors, cannot form %d dimensions", K, len(fs), n)
	}
	dims := make([]int, n)
	for i := range dims {
		dims[i] = 1
	}
	// Largest factors first, each to the smallest dimension so far.
	sort.Sort(sort.Reverse(sort.IntSlice(fs)))
	for _, f := range fs {
		smallest := 0
		for d := 1; d < n; d++ {
			if dims[d] < dims[smallest] {
				smallest = d
			}
		}
		dims[smallest] *= f
	}
	// Present larger dimensions first for consistency with NewBalanced.
	sort.Sort(sort.Reverse(sort.IntSlice(dims)))
	return New(dims...)
}

// MaxFactoredDim returns the largest dimension count NewFactored supports
// for K: the number of prime factors of K with multiplicity (Omega(K)).
func MaxFactoredDim(K int) int {
	if K < 2 {
		return 0
	}
	return len(primeFactors(K))
}

// NewSkewed builds an n-dimensional topology for a power-of-two K whose
// dimension-size imbalance is controlled by skew in [0, 1]: skew 0
// reproduces the balanced scheme (optimal maximum message count), skew 1
// concentrates every movable factor of two into the first dimension
// (K/2^(n-1), 2, ..., 2 — worst message count of the fixed-n family but
// the least forwarding, i.e. the lowest volume blowup). Section 5 notes
// this trade-off exists but leaves it unexplored; the skew ablation bench
// measures it.
func NewSkewed(K, n int, skew float64) (*Topology, error) {
	if skew < 0 || skew > 1 {
		return nil, fmt.Errorf("vpt: skew %g outside [0, 1]", skew)
	}
	base, err := NewBalanced(K, n)
	if err != nil {
		return nil, err
	}
	if n == 1 {
		return base, nil
	}
	// Exponent vector of the balanced scheme, largest first.
	exps := make([]int, n)
	for d, k := range base.Dims() {
		e := 0
		for 1<<e < k {
			e++
		}
		exps[d] = e
	}
	sort.Sort(sort.Reverse(sort.IntSlice(exps)))
	// Movable bits: everything above 1 in dimensions 2..n.
	movable := 0
	for d := 1; d < n; d++ {
		movable += exps[d] - 1
	}
	move := int(skew*float64(movable) + 0.5)
	for d := n - 1; d >= 1 && move > 0; d-- {
		for exps[d] > 1 && move > 0 {
			exps[d]--
			exps[0]++
			move--
		}
	}
	dims := make([]int, n)
	for d, e := range exps {
		dims[d] = 1 << e
	}
	return New(dims...)
}
