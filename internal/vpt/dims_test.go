package vpt

import (
	"testing"
	"testing/quick"
)

func TestPrimeFactors(t *testing.T) {
	cases := []struct {
		v    int
		want []int
	}{
		{2, []int{2}},
		{12, []int{2, 2, 3}},
		{97, []int{97}},
		{360, []int{2, 2, 2, 3, 3, 5}},
		{1024, []int{2, 2, 2, 2, 2, 2, 2, 2, 2, 2}},
	}
	for _, c := range cases {
		got := primeFactors(c.v)
		if len(got) != len(c.want) {
			t.Errorf("primeFactors(%d) = %v", c.v, got)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("primeFactors(%d) = %v", c.v, got)
				break
			}
		}
	}
}

func TestNewFactoredArbitraryK(t *testing.T) {
	for _, c := range []struct{ K, n int }{
		{12, 2}, {12, 3}, {60, 3}, {100, 2}, {96, 4}, {18, 2}, {210, 4},
	} {
		tp, err := NewFactored(c.K, c.n)
		if err != nil {
			t.Errorf("NewFactored(%d,%d): %v", c.K, c.n, err)
			continue
		}
		if tp.Size() != c.K || tp.N() != c.n {
			t.Errorf("NewFactored(%d,%d) = %v", c.K, c.n, tp)
		}
		for _, k := range tp.Dims() {
			if k < 2 {
				t.Errorf("NewFactored(%d,%d) has dim %d", c.K, c.n, k)
			}
		}
	}
}

func TestNewFactoredMatchesBalancedForPowersOfTwo(t *testing.T) {
	// For powers of two the factored scheme must achieve the same optimal
	// message bound as the balanced scheme.
	for _, K := range []int{16, 64, 256, 1024} {
		for n := 1; n <= MaxDim(K); n++ {
			f, err := NewFactored(K, n)
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewBalanced(K, n)
			if err != nil {
				t.Fatal(err)
			}
			if f.NumNeighbors() != b.NumNeighbors() {
				t.Errorf("K=%d n=%d: factored bound %d != balanced %d",
					K, n, f.NumNeighbors(), b.NumNeighbors())
			}
		}
	}
}

func TestNewFactoredErrors(t *testing.T) {
	if _, err := NewFactored(1, 1); err == nil {
		t.Error("K=1 accepted")
	}
	if _, err := NewFactored(6, 3); err == nil {
		t.Error("more dims than prime factors accepted")
	}
	if _, err := NewFactored(97, 2); err == nil {
		t.Error("prime K with n=2 accepted")
	}
	if _, err := NewFactored(8, 0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestMaxFactoredDim(t *testing.T) {
	for _, c := range []struct{ k, want int }{{2, 1}, {12, 3}, {97, 1}, {1024, 10}, {1, 0}} {
		if got := MaxFactoredDim(c.k); got != c.want {
			t.Errorf("MaxFactoredDim(%d) = %d, want %d", c.k, got, c.want)
		}
	}
}

// Property: NewFactored always multiplies back to K with dims >= 2.
func TestQuickNewFactoredProduct(t *testing.T) {
	f := func(raw uint16, nRaw uint8) bool {
		K := int(raw)%4000 + 4
		n := int(nRaw)%3 + 1
		tp, err := NewFactored(K, n)
		if err != nil {
			return true // some (K, n) are legitimately infeasible
		}
		prod := 1
		for _, k := range tp.Dims() {
			if k < 2 {
				return false
			}
			prod *= k
		}
		return prod == K
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNewSkewedEndpoints(t *testing.T) {
	// skew 0 = balanced; skew 1 = maximally concentrated.
	K, n := 256, 4
	flat, err := NewSkewed(K, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	bal, _ := NewBalanced(K, n)
	if !flat.Equal(bal) {
		t.Errorf("skew 0 = %v, want %v", flat, bal)
	}
	sharp, err := NewSkewed(K, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := MustNew(32, 2, 2, 2)
	if !sharp.Equal(want) {
		t.Errorf("skew 1 = %v, want %v", sharp, want)
	}
}

func TestNewSkewedTradeoffMonotone(t *testing.T) {
	// Increasing skew must not decrease the message bound and must not
	// increase the expected forwarding sum_d (k_d-1)/k_d.
	K, n := 1024, 5
	prevBound := -1
	prevFw := 1e18
	for _, skew := range []float64{0, 0.25, 0.5, 0.75, 1} {
		tp, err := NewSkewed(K, n, skew)
		if err != nil {
			t.Fatal(err)
		}
		if tp.Size() != K || tp.N() != n {
			t.Fatalf("skew %g: %v", skew, tp)
		}
		bound := tp.NumNeighbors()
		fw := 0.0
		for _, k := range tp.Dims() {
			fw += float64(k-1) / float64(k)
		}
		if bound < prevBound {
			t.Errorf("skew %g: bound %d below previous %d", skew, bound, prevBound)
		}
		if fw > prevFw+1e-12 {
			t.Errorf("skew %g: forwarding %.4f above previous %.4f", skew, fw, prevFw)
		}
		prevBound, prevFw = bound, fw
	}
}

func TestNewSkewedValidation(t *testing.T) {
	if _, err := NewSkewed(64, 2, -0.1); err == nil {
		t.Error("negative skew accepted")
	}
	if _, err := NewSkewed(64, 2, 1.5); err == nil {
		t.Error("skew > 1 accepted")
	}
	if _, err := NewSkewed(63, 2, 0.5); err == nil {
		t.Error("non-power-of-two K accepted")
	}
	one, err := NewSkewed(64, 1, 0.7)
	if err != nil || one.N() != 1 {
		t.Errorf("n=1 skew: %v, %v", one, err)
	}
}
