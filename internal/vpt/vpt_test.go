package vpt

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Error("New() with no dims should fail")
	}
	if _, err := New(4, 1, 4); err == nil {
		t.Error("size-1 dimension should be rejected")
	}
	if _, err := New(0); err == nil {
		t.Error("size-0 dimension should be rejected")
	}
	if _, err := New(-3); err == nil {
		t.Error("negative dimension should be rejected")
	}
	tp, err := New(4, 4, 4)
	if err != nil {
		t.Fatalf("New(4,4,4): %v", err)
	}
	if tp.Size() != 64 || tp.N() != 3 {
		t.Errorf("got Size=%d N=%d, want 64, 3", tp.Size(), tp.N())
	}
}

func TestDirectTopology(t *testing.T) {
	tp, err := Direct(16)
	if err != nil {
		t.Fatal(err)
	}
	if tp.N() != 1 || tp.Size() != 16 {
		t.Fatalf("Direct(16) = %v", tp)
	}
	if tp.NumNeighbors() != 15 {
		t.Errorf("direct topology must have K-1 neighbors, got %d", tp.NumNeighbors())
	}
	// Every other rank is a neighbor of rank 5 in dimension 0.
	nb := tp.Neighbors(nil, 5, 0)
	if len(nb) != 15 {
		t.Fatalf("got %d neighbors", len(nb))
	}
	seen := map[int]bool{}
	for _, q := range nb {
		if q == 5 {
			t.Error("rank is its own neighbor")
		}
		seen[q] = true
	}
	if len(seen) != 15 {
		t.Error("duplicate neighbors")
	}
}

func TestNewBalancedScheme(t *testing.T) {
	cases := []struct {
		K, n int
		want []int
	}{
		{64, 1, []int{64}},
		{64, 2, []int{8, 8}},
		{64, 3, []int{4, 4, 4}},
		{64, 6, []int{2, 2, 2, 2, 2, 2}},
		{128, 2, []int{16, 8}},   // lg=7: 7 mod 2 = 1 -> first dim 2^4
		{128, 3, []int{8, 4, 4}}, // 7 mod 3 = 1
		{512, 2, []int{32, 16}},
		{512, 4, []int{8, 8, 4, 4}}, // 9 mod 4 = 1? lg=9, q=2,r=1 -> [8,4,4,4]
		{32, 5, []int{2, 2, 2, 2, 2}},
		{4096, 12, []int{2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2}},
	}
	// fix the 512,4 expectation: lg=9, q=2, r=1 -> dims [8,4,4,4]
	cases[7].want = []int{8, 4, 4, 4}
	for _, c := range cases {
		tp, err := NewBalanced(c.K, c.n)
		if err != nil {
			t.Errorf("NewBalanced(%d,%d): %v", c.K, c.n, err)
			continue
		}
		got := tp.Dims()
		if len(got) != len(c.want) {
			t.Errorf("NewBalanced(%d,%d) dims = %v, want %v", c.K, c.n, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("NewBalanced(%d,%d) dims = %v, want %v", c.K, c.n, got, c.want)
				break
			}
		}
	}
}

func TestNewBalancedErrors(t *testing.T) {
	for _, bad := range []struct{ K, n int }{
		{48, 2}, // not a power of two
		{0, 1},  // K too small
		{1, 1},  // K too small
		{64, 0}, // n too small
		{64, 7}, // n > lg K
		{-8, 2}, // negative
		{63, 3}, // not a power of two
	} {
		if _, err := NewBalanced(bad.K, bad.n); err == nil {
			t.Errorf("NewBalanced(%d,%d) should fail", bad.K, bad.n)
		}
	}
}

// The balanced scheme must produce dims whose product is K, all powers of
// two, no two differing by more than a factor of two, and minimal
// sum(k_d - 1) among power-of-two factorizations of fixed length n.
func TestNewBalancedInvariants(t *testing.T) {
	for _, K := range []int{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 8192, 16384} {
		for n := 1; n <= MaxDim(K); n++ {
			tp, err := NewBalanced(K, n)
			if err != nil {
				t.Fatalf("NewBalanced(%d,%d): %v", K, n, err)
			}
			prod, minK, maxK := 1, 1<<30, 0
			for _, k := range tp.Dims() {
				prod *= k
				if k < minK {
					minK = k
				}
				if k > maxK {
					maxK = k
				}
				if k&(k-1) != 0 {
					t.Errorf("K=%d n=%d: non-power-of-two dim %d", K, n, k)
				}
			}
			if prod != K {
				t.Errorf("K=%d n=%d: product %d", K, n, prod)
			}
			if maxK > 2*minK {
				t.Errorf("K=%d n=%d: dims %v differ by more than 2x", K, n, tp.Dims())
			}
		}
	}
}

func TestCoordsRankRoundTrip(t *testing.T) {
	tp := MustNew(4, 2, 8, 3)
	for p := 0; p < tp.Size(); p++ {
		if got := tp.Rank(tp.Coords(p)); got != p {
			t.Fatalf("Rank(Coords(%d)) = %d", p, got)
		}
	}
}

func TestDigitStride(t *testing.T) {
	tp := MustNew(4, 4, 4)
	// Paper's Figure 4 example translated to 0-based digits: the process
	// with digits (0,1,1) has rank 0*1 + 1*4 + 1*16 = 20.
	p := tp.Rank([]int{0, 1, 1})
	if p != 20 {
		t.Fatalf("rank = %d", p)
	}
	if tp.Digit(p, 0) != 0 || tp.Digit(p, 1) != 1 || tp.Digit(p, 2) != 1 {
		t.Errorf("digits = %v", tp.Coords(p))
	}
	if tp.Stride(0) != 1 || tp.Stride(1) != 4 || tp.Stride(2) != 16 {
		t.Errorf("strides wrong")
	}
}

func TestWithDigit(t *testing.T) {
	tp := MustNew(4, 4, 4)
	p := tp.Rank([]int{2, 1, 3})
	q := tp.WithDigit(p, 1, 3)
	want := tp.Rank([]int{2, 3, 3})
	if q != want {
		t.Errorf("WithDigit = %d, want %d", q, want)
	}
	if tp.WithDigit(p, 2, 3) != p {
		t.Error("replacing digit with itself must be identity")
	}
}

func TestNeighborsDefinition(t *testing.T) {
	tp := MustNew(4, 4, 4)
	for p := 0; p < tp.Size(); p++ {
		total := 0
		for d := 0; d < tp.N(); d++ {
			nb := tp.Neighbors(nil, p, d)
			if len(nb) != tp.Dim(d)-1 {
				t.Fatalf("p=%d d=%d: %d neighbors, want %d", p, d, len(nb), tp.Dim(d)-1)
			}
			for _, q := range nb {
				if tp.Hamming(p, q) != 1 {
					t.Fatalf("p=%d q=%d: neighbors must differ in exactly one digit", p, q)
				}
				if tp.FirstDiff(p, q) != d {
					t.Fatalf("p=%d q=%d: differ in dim %d, want %d", p, q, tp.FirstDiff(p, q), d)
				}
			}
			total += len(nb)
		}
		if total != tp.NumNeighbors() {
			t.Fatalf("neighbor total mismatch")
		}
	}
}

func TestHammingSymmetricTriangle(t *testing.T) {
	tp := MustNew(2, 4, 2, 4)
	rng := rand.New(rand.NewSource(1))
	for it := 0; it < 200; it++ {
		a, b, c := rng.Intn(tp.Size()), rng.Intn(tp.Size()), rng.Intn(tp.Size())
		if tp.Hamming(a, b) != tp.Hamming(b, a) {
			t.Fatal("Hamming not symmetric")
		}
		if tp.Hamming(a, a) != 0 {
			t.Fatal("Hamming(a,a) != 0")
		}
		if tp.Hamming(a, c) > tp.Hamming(a, b)+tp.Hamming(b, c) {
			t.Fatal("Hamming violates triangle inequality")
		}
	}
}

func TestPathDimensionOrdered(t *testing.T) {
	tp := MustNew(4, 4, 4)
	rng := rand.New(rand.NewSource(7))
	for it := 0; it < 500; it++ {
		src, dst := rng.Intn(64), rng.Intn(64)
		path := tp.Path(nil, src, dst)
		if len(path) != tp.Hamming(src, dst) {
			t.Fatalf("path length %d != Hamming %d", len(path), tp.Hamming(src, dst))
		}
		cur, fixed := src, 0
		for _, hop := range path {
			d := tp.FirstDiff(cur, hop)
			if d < fixed {
				t.Fatal("path not dimension-ordered")
			}
			if tp.Hamming(hop, dst) != tp.Hamming(cur, dst)-1 {
				t.Fatal("hop does not make progress")
			}
			fixed = d
			cur = hop
		}
		if len(path) > 0 && path[len(path)-1] != dst {
			t.Fatal("path does not end at destination")
		}
		if src == dst && len(path) != 0 {
			t.Fatal("self path must be empty")
		}
	}
}

func TestFirstNextDiff(t *testing.T) {
	tp := MustNew(2, 2, 2, 2)
	a := tp.Rank([]int{0, 0, 0, 0})
	b := tp.Rank([]int{0, 1, 0, 1})
	if d := tp.FirstDiff(a, b); d != 1 {
		t.Errorf("FirstDiff = %d, want 1", d)
	}
	if d := tp.NextDiff(a, b, 1); d != 3 {
		t.Errorf("NextDiff = %d, want 3", d)
	}
	if d := tp.NextDiff(a, b, 3); d != -1 {
		t.Errorf("NextDiff past last = %d, want -1", d)
	}
	if d := tp.FirstDiff(a, a); d != -1 {
		t.Errorf("FirstDiff(a,a) = %d, want -1", d)
	}
}

func TestGroupOf(t *testing.T) {
	tp := MustNew(4, 4, 4)
	p := tp.Rank([]int{2, 1, 3})
	g := tp.GroupOf(p, 1)
	if len(g) != 4 {
		t.Fatalf("group size %d", len(g))
	}
	found := false
	for _, q := range g {
		if q == p {
			found = true
		}
		if tp.Digit(q, 0) != 2 || tp.Digit(q, 2) != 3 {
			t.Error("group member changes other digits")
		}
	}
	if !found {
		t.Error("group must contain the process itself")
	}
}

func TestString(t *testing.T) {
	if s := MustNew(4, 4, 4).String(); s != "T3(4,4,4)" {
		t.Errorf("String = %q", s)
	}
	if s := MustNew(64).String(); s != "T1(64)" {
		t.Errorf("String = %q", s)
	}
}

func TestEqual(t *testing.T) {
	a := MustNew(4, 8)
	b := MustNew(4, 8)
	c := MustNew(8, 4)
	d := MustNew(32)
	if !a.Equal(b) {
		t.Error("identical topologies must be Equal")
	}
	if a.Equal(c) {
		t.Error("order of dims matters")
	}
	if a.Equal(d) {
		t.Error("different n must not be Equal")
	}
}

func TestMaxDim(t *testing.T) {
	for _, c := range []struct{ k, want int }{{1, 0}, {2, 1}, {4, 2}, {1024, 10}, {16384, 14}} {
		if got := MaxDim(c.k); got != c.want {
			t.Errorf("MaxDim(%d) = %d, want %d", c.k, got, c.want)
		}
	}
}

// Property: for random valid digit vectors, Rank/Coords round-trip and
// RouteNext fixes exactly digit d.
func TestQuickRouteNextFixesDigit(t *testing.T) {
	tp := MustNew(4, 2, 8)
	f := func(a, b uint16, dRaw uint8) bool {
		src := int(a) % tp.Size()
		dst := int(b) % tp.Size()
		d := int(dRaw) % tp.N()
		next := tp.RouteNext(src, dst, d)
		if tp.Digit(next, d) != tp.Digit(dst, d) {
			return false
		}
		for c := 0; c < tp.N(); c++ {
			if c != d && tp.Digit(next, c) != tp.Digit(src, c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Hamming distance equals the number of stages a message is
// forwarded in, which equals len(Path).
func TestQuickHammingEqualsPathLen(t *testing.T) {
	tp := MustNew(2, 4, 4, 2)
	f := func(a, b uint16) bool {
		src := int(a) % tp.Size()
		dst := int(b) % tp.Size()
		return len(tp.Path(nil, src, dst)) == tp.Hamming(src, dst)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCoords(b *testing.B) {
	tp := MustNew(8, 8, 8, 8)
	for i := 0; i < b.N; i++ {
		_ = tp.Coords(i % tp.Size())
	}
}

func BenchmarkPath(b *testing.B) {
	tp := MustNew(8, 8, 8, 8)
	buf := make([]int, 0, 4)
	for i := 0; i < b.N; i++ {
		buf = tp.Path(buf[:0], i%tp.Size(), (i*2654435761)%tp.Size())
	}
}
