// Package vpt implements the virtual process topology (VPT) of Selvitopi &
// Aykanat (SC '19): K processes organized into an n-dimensional mixed-radix
// structure T_n(k1, ..., kn) in which the processes of each dimension-d
// group are completely connected.
//
// A process is identified by its rank in [0, K) and equivalently by a vector
// of n digits, where digit d (0-based here, 1-based in the paper) has radix
// k_d. Two processes are neighbors in dimension d if they differ in digit d
// and agree in every other digit. Unlike a k-ary n-cube, neighboring digits
// may differ by more than one: each dimension-d group of k_d processes is a
// clique, so a process has k_d - 1 neighbors per dimension and
// sum_d (k_d - 1) neighbors in total.
package vpt

import (
	"errors"
	"fmt"
	"math/bits"
	"strings"
)

// Topology is an immutable n-dimensional virtual process topology.
// The zero value is not usable; construct with New, NewBalanced or Direct.
type Topology struct {
	dims    []int // k_1 ... k_n (internal index 0 .. n-1)
	strides []int // strides[d] = k_0 * ... * k_{d-1}; strides[0] = 1
	size    int   // K = product of dims
}

// ErrBadDims reports an invalid dimension-size vector.
var ErrBadDims = errors.New("vpt: dimension sizes must all be >= 2")

// New builds a topology with the given dimension sizes k_1..k_n.
// Every size must be at least 2 (a size-1 dimension contributes nothing:
// its groups are singletons with no neighbors).
func New(dims ...int) (*Topology, error) {
	if len(dims) == 0 {
		return nil, errors.New("vpt: need at least one dimension")
	}
	size := 1
	for _, k := range dims {
		if k < 2 {
			return nil, fmt.Errorf("%w (got %v)", ErrBadDims, dims)
		}
		if size > (1<<31)/k {
			return nil, fmt.Errorf("vpt: topology too large: %v", dims)
		}
		size *= k
	}
	t := &Topology{
		dims:    append([]int(nil), dims...),
		strides: make([]int, len(dims)),
		size:    size,
	}
	s := 1
	for d, k := range t.dims {
		t.strides[d] = s
		s *= k
	}
	return t, nil
}

// MustNew is New but panics on error; for tests and tables of constants.
func MustNew(dims ...int) *Topology {
	t, err := New(dims...)
	if err != nil {
		panic(err)
	}
	return t
}

// Direct returns the 1-dimensional topology T_1(K) in which every process is
// a neighbor of every other process. Running the store-and-forward scheme on
// it degenerates to the direct point-to-point baseline (BL in the paper).
func Direct(K int) (*Topology, error) { return New(K) }

// NewBalanced builds the n-dimensional topology for K processes using the
// paper's Section 5 scheme, which is optimal in maximum message count:
// K must be a power of two; the first (lg K mod n) dimensions get size
// 2^(floor(lg K / n) + 1) and the remaining dimensions get 2^floor(lg K / n).
// No two dimension sizes differ by more than a factor of two.
func NewBalanced(K, n int) (*Topology, error) {
	if K < 2 || K&(K-1) != 0 {
		return nil, fmt.Errorf("vpt: K must be a power of two >= 2, got %d", K)
	}
	lg := bits.TrailingZeros(uint(K))
	if n < 1 || n > lg {
		return nil, fmt.Errorf("vpt: dimension n=%d out of range [1, lg2(K)=%d]", n, lg)
	}
	q, r := lg/n, lg%n
	dims := make([]int, n)
	for d := range dims {
		if d < r {
			dims[d] = 1 << (q + 1)
		} else {
			dims[d] = 1 << q
		}
	}
	return New(dims...)
}

// MaxDim returns the largest VPT dimension available for K processes under
// the balanced scheme, i.e. lg2(K) for a power-of-two K.
func MaxDim(K int) int {
	if K < 2 {
		return 0
	}
	return bits.Len(uint(K)) - 1
}

// N returns the number of dimensions n.
func (t *Topology) N() int { return len(t.dims) }

// Size returns the total number of processes K.
func (t *Topology) Size() int { return t.size }

// Dims returns a copy of the dimension sizes k_1..k_n.
func (t *Topology) Dims() []int { return append([]int(nil), t.dims...) }

// Dim returns k_d for 0 <= d < n.
func (t *Topology) Dim(d int) int { return t.dims[d] }

// Stride returns the rank stride of dimension d: changing digit d by one
// changes the rank by Stride(d).
func (t *Topology) Stride(d int) int { return t.strides[d] }

// Digit returns digit d of rank p, a value in [0, k_d).
func (t *Topology) Digit(p, d int) int { return (p / t.strides[d]) % t.dims[d] }

// Coords decomposes rank p into its digit vector (digit 0 first).
func (t *Topology) Coords(p int) []int {
	c := make([]int, len(t.dims))
	for d := range t.dims {
		c[d] = t.Digit(p, d)
	}
	return c
}

// Rank composes a digit vector back into a rank. It is the inverse of
// Coords; digits out of range are undefined behaviour.
func (t *Topology) Rank(coords []int) int {
	p := 0
	for d, c := range coords {
		p += c * t.strides[d]
	}
	return p
}

// WithDigit returns the rank obtained from p by replacing digit d with x.
// If x equals p's digit d, the result is p itself.
func (t *Topology) WithDigit(p, d, x int) int {
	return p + (x-t.Digit(p, d))*t.strides[d]
}

// Neighbors appends to dst the ranks of v(p, d): the k_d - 1 processes that
// differ from p only in digit d, in increasing digit order, and returns the
// extended slice. dst may be nil.
func (t *Topology) Neighbors(dst []int, p, d int) []int {
	own := t.Digit(p, d)
	for x := 0; x < t.dims[d]; x++ {
		if x != own {
			dst = append(dst, t.WithDigit(p, d, x))
		}
	}
	return dst
}

// NumNeighbors returns the total neighbor count sum_d (k_d - 1), which is
// also the per-process upper bound on the number of messages sent by the
// store-and-forward scheme (Section 4).
func (t *Topology) NumNeighbors() int {
	n := 0
	for _, k := range t.dims {
		n += k - 1
	}
	return n
}

// Hamming returns the number of digits in which ranks a and b differ. A
// submessage from a to b is forwarded exactly Hamming(a, b) times by the
// store-and-forward scheme.
func (t *Topology) Hamming(a, b int) int {
	h := 0
	for d := range t.dims {
		if t.Digit(a, d) != t.Digit(b, d) {
			h++
		}
	}
	return h
}

// FirstDiff returns the smallest dimension in which a and b differ, or -1 if
// a == b. It is the stage in which a message from a to b is first forwarded
// (line 5 of Algorithm 1).
func (t *Topology) FirstDiff(a, b int) int {
	if a == b {
		return -1
	}
	for d := range t.dims {
		if t.Digit(a, d) != t.Digit(b, d) {
			return d
		}
	}
	return -1
}

// NextDiff returns the smallest dimension strictly greater than d in which a
// and b differ, or -1 if they agree in all of them. It decides the stage a
// received submessage is forwarded in next (line 16 of Algorithm 1).
func (t *Topology) NextDiff(a, b, d int) int {
	for c := d + 1; c < len(t.dims); c++ {
		if t.Digit(a, c) != t.Digit(b, c) {
			return c
		}
	}
	return -1
}

// RouteNext returns the next hop for a message currently held by rank cur
// and destined for rank dst when communication for dimension d is executed:
// cur with digit d replaced by dst's digit d. If the digits already agree it
// returns cur (the message is stored, not forwarded, in this stage).
func (t *Topology) RouteNext(cur, dst, d int) int {
	return t.WithDigit(cur, d, t.Digit(dst, d))
}

// Path appends the full dimension-ordered route from src to dst (excluding
// src, including dst when src != dst) to dst slice and returns it. The
// length of the appended path equals Hamming(src, dst).
func (t *Topology) Path(buf []int, src, dst int) []int {
	cur := src
	for d := range t.dims {
		next := t.RouteNext(cur, dst, d)
		if next != cur {
			buf = append(buf, next)
			cur = next
		}
	}
	return buf
}

// GroupOf returns the ranks of the dimension-d group containing p (p's
// neighbors in dimension d plus p itself), in increasing rank order.
func (t *Topology) GroupOf(p, d int) []int {
	g := make([]int, 0, t.dims[d])
	for x := 0; x < t.dims[d]; x++ {
		g = append(g, t.WithDigit(p, d, x))
	}
	return g
}

// String renders the topology as e.g. "T3(4,4,4)".
func (t *Topology) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "T%d(", len(t.dims))
	for d, k := range t.dims {
		if d > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", k)
	}
	b.WriteByte(')')
	return b.String()
}

// Equal reports whether two topologies have identical dimension vectors.
func (t *Topology) Equal(o *Topology) bool {
	if t.size != o.size || len(t.dims) != len(o.dims) {
		return false
	}
	for d := range t.dims {
		if t.dims[d] != o.dims[d] {
			return false
		}
	}
	return true
}
