package stfw

// BenchmarkSessionIteration measures one steady-state iteration of the
// iterative-solver hot loop — every rank performs one Session.Multiply —
// comparing the compiled session (indexed program, zero steady-state
// allocation) against the seed map-based path on the paper's two
// communication shapes: a hot-spot instance (gupta2) and a power-law
// instance (coAuthorsDBLP), at K ∈ {64, 256, 1024}.
//
// TestWriteIterBenchJSON renders the same measurements into BENCH_iter.json
// when BENCH_ITER_JSON names an output path (BENCH_ITER_MAXK optionally
// caps K, e.g. for CI smoke runs).

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"stfw/internal/core"
	"stfw/internal/partition"
	"stfw/internal/runtime"
	"stfw/internal/sparse"
	"stfw/internal/spmv"
	"stfw/internal/transport/chanpt"
	"stfw/internal/vpt"
)

type iterBenchCase struct {
	matrix string
	scale  int
	K, dim int
}

func iterBenchCases() []iterBenchCase {
	var out []iterBenchCase
	for _, kd := range []struct{ K, dim int }{{64, 3}, {256, 4}, {1024, 5}} {
		out = append(out,
			iterBenchCase{matrix: "gupta2", scale: 8, K: kd.K, dim: kd.dim},
			iterBenchCase{matrix: "coAuthorsDBLP", scale: 8, K: kd.K, dim: kd.dim},
		)
	}
	return out
}

// iterBenchSetup is the shared per-(matrix, K) state, built once and reused
// by the compiled and seed variants.
type iterBenchSetup struct {
	a    *sparse.CSR
	part *partition.Partition
	pat  *spmv.Pattern
	topo *vpt.Topology
	x    []float64
}

var iterBenchSetups = map[string]*iterBenchSetup{}

func getIterBenchSetup(tb testing.TB, c iterBenchCase) *iterBenchSetup {
	tb.Helper()
	key := fmt.Sprintf("%s/%d/%d", c.matrix, c.scale, c.K)
	if s, ok := iterBenchSetups[key]; ok {
		return s
	}
	a, err := sparse.CatalogMatrix(c.matrix, c.scale)
	if err != nil {
		tb.Fatal(err)
	}
	part, err := partition.Greedy(a, c.K, partition.DefaultGreedy())
	if err != nil {
		tb.Fatal(err)
	}
	pat, err := spmv.BuildPattern(a, part)
	if err != nil {
		tb.Fatal(err)
	}
	topo, err := vpt.NewBalanced(c.K, c.dim)
	if err != nil {
		tb.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	s := &iterBenchSetup{a: a, part: part, pat: pat, topo: topo, x: x}
	iterBenchSetups[key] = s
	return s
}

// iterBenchWorld keeps one goroutine per rank alive across benchmark
// iterations so one "op" is a pure lockstep multiply with no goroutine
// startup in the measured region.
type iterBenchWorld struct {
	step []chan []float64
	done []chan error
}

func startIterBenchWorld(tb testing.TB, s *iterBenchSetup, opt spmv.Options, K int) *iterBenchWorld {
	tb.Helper()
	w, err := chanpt.NewWorld(K, K)
	if err != nil {
		tb.Fatal(err)
	}
	bw := &iterBenchWorld{step: make([]chan []float64, K), done: make([]chan error, K)}
	comms := w.Comms()
	if opt.Telemetry != nil {
		stages := opt.Telemetry.Stages()
		opt.Telemetry.WrapComms(comms, func(tag int) (int, bool) {
			return core.TagStage(tag, stages)
		})
	}
	for r := 0; r < K; r++ {
		bw.step[r] = make(chan []float64)
		bw.done[r] = make(chan error)
		go func(c runtime.Comm, step chan []float64, done chan error) {
			sess, err := spmv.NewSession(c, s.a, s.part, s.pat, opt)
			if err != nil {
				for range step {
					done <- err
				}
				return
			}
			for x := range step {
				_, err := sess.Multiply(x)
				done <- err
			}
		}(comms[r], bw.step[r], bw.done[r])
	}
	return bw
}

func (bw *iterBenchWorld) multiply(x []float64) error {
	for _, ch := range bw.step {
		ch <- x
	}
	var first error
	for _, ch := range bw.done {
		if err := <-ch; err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (bw *iterBenchWorld) stop() {
	for _, ch := range bw.step {
		close(ch)
	}
}

// benchSessionVariant is the measured body shared by the benchmark and the
// JSON writer: steady-state lockstep multiplies over a warm world.
func benchSessionVariant(b *testing.B, s *iterBenchSetup, opt spmv.Options, K int) {
	bw := startIterBenchWorld(b, s, opt, K)
	defer bw.stop()
	// Learning iteration (STFW) plus warmup of pools and matcher queues.
	for i := 0; i < 2; i++ {
		if err := bw.multiply(s.x); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bw.multiply(s.x); err != nil {
			b.Fatal(err)
		}
	}
}

func iterBenchOptions(s *iterBenchSetup, uncompiled bool) spmv.Options {
	return spmv.Options{Method: spmv.STFW, Topo: s.topo, Uncompiled: uncompiled}
}

func BenchmarkSessionIteration(b *testing.B) {
	for _, c := range iterBenchCases() {
		s := getIterBenchSetup(b, c)
		for _, variant := range []string{"compiled", "seed"} {
			b.Run(fmt.Sprintf("%s/K=%d/%s", c.matrix, c.K, variant), func(b *testing.B) {
				benchSessionVariant(b, s, iterBenchOptions(s, variant == "seed"), c.K)
			})
		}
	}
}

// iterBenchResult is one BENCH_iter.json entry.
type iterBenchResult struct {
	Matrix      string  `json:"matrix"`
	K           int     `json:"k"`
	Variant     string  `json:"variant"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type iterBenchReport struct {
	// Note describes what one op is, so the numbers are interpretable
	// without reading the harness.
	Note    string            `json:"note"`
	Results []iterBenchResult `json:"results"`
	// SpeedupCompiled maps "matrix/K=n" to seed ns_per_op divided by
	// compiled ns_per_op.
	SpeedupCompiled map[string]float64 `json:"speedup_compiled"`
}

// TestWriteIterBenchJSON measures every BenchmarkSessionIteration case via
// testing.Benchmark and writes BENCH_iter.json. Enabled by setting
// BENCH_ITER_JSON to the output path; BENCH_ITER_MAXK caps the rank counts
// (CI uses 256 to keep the smoke step fast).
func TestWriteIterBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_ITER_JSON")
	if path == "" {
		t.Skip("BENCH_ITER_JSON not set")
	}
	maxK := 1 << 30
	if v := os.Getenv("BENCH_ITER_MAXK"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("BENCH_ITER_MAXK: %v", err)
		}
		maxK = n
	}
	report := iterBenchReport{
		Note:            "one op = all K ranks perform one steady-state Session.Multiply over STFW on the chanpt transport; allocs_per_op counts the whole world",
		SpeedupCompiled: map[string]float64{},
	}
	type pair struct{ compiled, seed float64 }
	pairs := map[string]*pair{}
	for _, c := range iterBenchCases() {
		if c.K > maxK {
			continue
		}
		s := getIterBenchSetup(t, c)
		for _, variant := range []string{"compiled", "seed"} {
			opt := iterBenchOptions(s, variant == "seed")
			r := testing.Benchmark(func(b *testing.B) {
				benchSessionVariant(b, s, opt, c.K)
			})
			nsOp := float64(r.T.Nanoseconds()) / float64(r.N)
			report.Results = append(report.Results, iterBenchResult{
				Matrix:      c.matrix,
				K:           c.K,
				Variant:     variant,
				NsPerOp:     nsOp,
				AllocsPerOp: r.AllocsPerOp(),
			})
			key := fmt.Sprintf("%s/K=%d", c.matrix, c.K)
			if pairs[key] == nil {
				pairs[key] = &pair{}
			}
			if variant == "compiled" {
				pairs[key].compiled = nsOp
			} else {
				pairs[key].seed = nsOp
			}
			t.Logf("%s/%s: %.0f ns/op, %d allocs/op (N=%d)", key, variant, nsOp, r.AllocsPerOp(), r.N)
		}
	}
	for key, p := range pairs {
		if p.compiled > 0 {
			report.SpeedupCompiled[key] = p.seed / p.compiled
		}
	}
	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}
