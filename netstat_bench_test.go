package stfw

// BenchmarkUDPLinkStats gates the observability overhead claim at the
// wire: the K=64 learned-replay throughput workload of
// BenchmarkTransportThroughput, run over udpnet with the per-link metric
// blocks enabled (the default) and disabled (WithoutLinkStats). The hooks
// are single atomic adds under locks the hot path already holds, so the
// enabled variant must stay within 3% of disabled.
//
// TestWriteNetstatBenchJSON measures the comparison with an interleaved
// best-of-reps estimator, enforces the <3% bar, runs a short in-process
// netstat experiment to capture the measured-vs-model divergence table,
// and renders everything into BENCH_netstat.json when BENCH_NETSTAT_JSON
// names an output path.

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"stfw/internal/experiments"
	"stfw/internal/netsim"
	"stfw/internal/runtime"
	"stfw/internal/telemetry"
	"stfw/internal/transport/udpnet"
)

func netstatBenchComms(tb testing.TB, stats bool) ([]runtime.Comm, func()) {
	tb.Helper()
	var opts []udpnet.Option
	if !stats {
		opts = append(opts, udpnet.WithoutLinkStats())
	}
	w, err := udpnet.NewWorld(tptBenchK, opts...)
	if err != nil {
		tb.Fatal(err)
	}
	return w.Comms(), w.Close
}

func BenchmarkUDPLinkStats(b *testing.B) {
	for _, variant := range []string{"off", "on"} {
		variant := variant
		b.Run("stats="+variant, func(b *testing.B) {
			comms, stop := netstatBenchComms(b, variant == "on")
			defer stop()
			runTransportThroughput(b, comms)
		})
	}
}

// netstatBenchReport is the BENCH_netstat.json schema.
type netstatBenchReport struct {
	Note         string                   `json:"note"`
	K            int                      `json:"k"`
	Dims         []int                    `json:"dims"`
	PayloadBytes int                      `json:"payload_bytes"`
	OffFramesSec float64                  `json:"stats_off_frames_per_sec"`
	OnFramesSec  float64                  `json:"stats_on_frames_per_sec"`
	OnOverOff    float64                  `json:"on_over_off"`
	AlphaSec     float64                  `json:"alpha_sec"`
	RTTSamples   int64                    `json:"rtt_samples"`
	Divergence   []netsim.StageDivergence `json:"divergence"`
	TotalRatio   float64                  `json:"total_pred_over_meas"`
}

// TestWriteNetstatBenchJSON gates the link-stats overhead bar and writes
// the BENCH_netstat.json artifact. Reps interleave the two variants so
// machine drift (thermal, scheduler) hits both equally; the estimator is
// the best rep per variant, the standard throughput-floor convention of
// the other BENCH_* writers.
func TestWriteNetstatBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_NETSTAT_JSON")
	if path == "" {
		t.Skip("BENCH_NETSTAT_JSON not set")
	}
	const reps = 3
	measure := func(stats bool) float64 {
		var fps float64
		res := testing.Benchmark(func(b *testing.B) {
			comms, stop := netstatBenchComms(b, stats)
			defer stop()
			fps = runTransportThroughput(b, comms)
		})
		t.Logf("stats=%v: %v, %.0f frames/sec", stats, res, fps)
		return fps
	}
	var off, on float64
	for rep := 0; rep < reps; rep++ {
		if fps := measure(false); fps > off {
			off = fps
		}
		if fps := measure(true); fps > on {
			on = fps
		}
	}
	ratio := on / off
	if ratio < 0.97 {
		t.Errorf("link stats cost too much: on %.0f frames/sec is %.3fx off %.0f, want >=0.97x",
			on, ratio, off)
	}

	// A short netstat run supplies the measured-vs-model columns: the same
	// experiment `stfwbench -exp netstat` prints, with a reduced iteration
	// count (the divergence table needs stable per-stage means, not a long
	// soak).
	ncfg := experiments.DefaultNetstat()
	ncfg.Iters = 50
	reg := telemetry.MustNew(telemetry.Config{Ranks: ncfg.K, Stages: ncfg.Dim})
	w, err := udpnet.NewWorld(ncfg.K)
	if err != nil {
		t.Fatal(err)
	}
	if err := experiments.NetstatRun(ncfg, reg, w.Comms()); err != nil {
		w.Close()
		t.Fatal(err)
	}
	w.Close()
	rep, err := experiments.BuildNetstatReport(ncfg, reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if rep.RTTSamples == 0 || rep.AlphaSec <= 0 {
		t.Errorf("netstat run measured no ack round trips (alpha %g, %d samples)",
			rep.AlphaSec, rep.RTTSamples)
	}
	_, _, total := netsim.TotalDivergence(rep.Divergence)

	report := netstatBenchReport{
		Note: fmt.Sprintf("K=%d dims=[8 8] learned-replay throughput over udpnet with per-link wire "+
			"metrics on vs off (best of %d interleaved reps), plus the netstat measured-vs-model "+
			"divergence (alpha from wire RTTs; ratio < 1 means the serial max-of-sums model "+
			"underestimates the pipelined wire)", tptBenchK, reps),
		K:            tptBenchK,
		Dims:         []int{8, 8},
		PayloadBytes: tptBenchPayload,
		OffFramesSec: off,
		OnFramesSec:  on,
		OnOverOff:    ratio,
		AlphaSec:     rep.AlphaSec,
		RTTSamples:   rep.RTTSamples,
		Divergence:   rep.Divergence,
		TotalRatio:   total,
	}
	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}
