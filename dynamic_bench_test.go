package stfw

// BenchmarkPatchVsRelearn quantifies the dynamic-sparsity claim: when a few
// percent of an irregular pattern's pairs churn, discovering the change with
// the census and incrementally patching the learned schedule + compiled
// replay (Discover → Patch → PatchCompiled) is far cheaper than relearning
// the world from scratch (NewPersistent → Compile). One "op" is the whole
// K-rank world absorbing one mutation batch. TestWriteDynamicBenchJSON
// renders the measurement — and gates the ≥5× speedup — into
// BENCH_dynamic.json when BENCH_DYNAMIC_JSON names an output path.
// TestPatchedReplayRunAllocs gates the other half of the contract: a replay
// that has been through Patch/PatchCompiled still runs allocation-free.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"testing"

	"stfw/internal/core"
	"stfw/internal/dynamic"
	"stfw/internal/experiments"
	"stfw/internal/runtime"
	"stfw/internal/transport/chanpt"
	"stfw/internal/vpt"
)

const dynBenchXlen = 256

type dynBenchPair struct{ src, dst int }

// dynBenchPattern builds the benchmark's base pattern: every rank sends
// 16..128-word payloads to a handful of random destinations, the same
// irregular shape the persistent benchmarks use.
func dynBenchPattern(K int) map[dynBenchPair]int {
	rng := rand.New(rand.NewSource(int64(K) * 3))
	pairs := map[dynBenchPair]int{}
	for src := 0; src < K; src++ {
		for l := 0; l < 8; l++ {
			dst := rng.Intn(K)
			if dst == src {
				continue
			}
			pairs[dynBenchPair{src, dst}] = 8 * (32 + rng.Intn(224))
		}
	}
	return pairs
}

// dynBenchToggles picks ~1-2% of the pattern's pairs to churn each op. The
// benchmark alternates removing and re-adding them, so every iteration is a
// steady-state patch of the same magnitude.
func dynBenchToggles(pairs map[dynBenchPair]int, frac float64) []dynBenchPair {
	sorted := make([]dynBenchPair, 0, len(pairs))
	for pr := range pairs {
		sorted = append(sorted, pr)
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].src != sorted[j].src {
			return sorted[i].src < sorted[j].src
		}
		return sorted[i].dst < sorted[j].dst
	})
	n := int(float64(len(sorted)) * frac)
	if n < 1 {
		n = 1
	}
	stride := len(sorted) / n
	var out []dynBenchPair
	for i := 0; i < len(sorted) && len(out) < n; i += stride {
		out = append(out, sorted[i])
	}
	return out
}

func dynBenchGather(me int, pairs map[dynBenchPair]int) map[int][]int32 {
	g := map[int][]int32{}
	for pr, size := range pairs {
		if pr.src != me {
			continue
		}
		idx := make([]int32, size/8)
		for i := range idx {
			idx[i] = int32((pr.src*29 + pr.dst*13 + i*7) % dynBenchXlen)
		}
		g[pr.dst] = idx
	}
	return g
}

func dynBenchPayloads(me int, pairs map[dynBenchPair]int) map[int][]byte {
	p := map[int][]byte{}
	for pr, size := range pairs {
		if pr.src == me {
			p[pr.dst] = make([]byte, size)
		}
	}
	return p
}

// dynBenchWorld holds one goroutine per rank stepping through per-iteration
// ops, so the measured region contains neither goroutine startup nor setup.
type dynBenchWorld struct {
	step []chan struct{}
	done []chan error
}

func (bw *dynBenchWorld) iterate() error {
	for _, ch := range bw.step {
		ch <- struct{}{}
	}
	var first error
	for _, ch := range bw.done {
		if err := <-ch; err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (bw *dynBenchWorld) stop() {
	for _, ch := range bw.step {
		close(ch)
	}
}

// startDynBenchWorld spins up the K-rank world. Each step, every rank runs
// op(c, iteration) — a full-relearn op or a census+patch op.
func startDynBenchWorld(tb testing.TB, K int, op func(c runtime.Comm, iter int) error) *dynBenchWorld {
	tb.Helper()
	w, err := chanpt.NewWorld(K, 2)
	if err != nil {
		tb.Fatal(err)
	}
	bw := &dynBenchWorld{step: make([]chan struct{}, K), done: make([]chan error, K)}
	for r, c := range w.Comms() {
		bw.step[r] = make(chan struct{})
		bw.done[r] = make(chan error)
		go func(c runtime.Comm, step chan struct{}, done chan error) {
			iter := 0
			for range step {
				done <- op(c, iter)
				iter++
			}
		}(c, bw.step[r], bw.done[r])
	}
	return bw
}

// benchRelearn: one op = the whole world learns the pattern from scratch and
// compiles it — the cost Patch is competing against.
func benchRelearn(b *testing.B, K, dim int) {
	tp, err := vpt.NewBalanced(K, dim)
	if err != nil {
		b.Fatal(err)
	}
	pairs := dynBenchPattern(K)
	payloads := make([]map[int][]byte, K)
	gathers := make([]map[int][]int32, K)
	for me := 0; me < K; me++ {
		payloads[me] = dynBenchPayloads(me, pairs)
		gathers[me] = dynBenchGather(me, pairs)
	}
	bw := startDynBenchWorld(b, K, func(c runtime.Comm, _ int) error {
		me := c.Rank()
		p, _, err := core.NewPersistent(c, tp, payloads[me])
		if err != nil {
			return err
		}
		_, err = p.Compile(dynBenchXlen, gathers[me])
		return err
	})
	defer bw.stop()
	if err := bw.iterate(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bw.iterate(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPatch: one op = the whole world absorbs one mutation batch through
// the production dynamic path — census, schedule patch, incremental
// re-lower. Odd iterations remove the toggle set, even ones re-add it.
func benchPatch(b *testing.B, K, dim int) {
	tp, err := vpt.NewBalanced(K, dim)
	if err != nil {
		b.Fatal(err)
	}
	pairs := dynBenchPattern(K)
	toggles := dynBenchToggles(pairs, 0.015)
	removed := map[dynBenchPair]int{}
	for pr, size := range pairs {
		removed[pr] = size
	}
	for _, pr := range toggles {
		delete(removed, pr)
	}

	// Phase 0 removes the toggles (gather shrinks), phase 1 re-adds them.
	rmDeltas := make([]dynamic.Delta, K)
	addDeltas := make([]dynamic.Delta, K)
	for _, pr := range toggles {
		rmDeltas[pr.src].Remove = append(rmDeltas[pr.src].Remove, pr.dst)
		addDeltas[pr.src].Add = append(addDeltas[pr.src].Add, dynamic.Announce{Dst: pr.dst, Size: pairs[pr]})
	}
	fullGather := make([]map[int][]int32, K)
	rmGather := make([]map[int][]int32, K)
	for me := 0; me < K; me++ {
		fullGather[me] = dynBenchGather(me, pairs)
		rmGather[me] = dynBenchGather(me, removed)
	}

	ps := make([]*core.Persistent, K)
	reps := make([]*core.Replay, K)
	bw := startDynBenchWorld(b, K, func(c runtime.Comm, iter int) error {
		me := c.Rank()
		if ps[me] == nil {
			p, _, err := core.NewPersistent(c, tp, dynBenchPayloads(me, pairs))
			if err != nil {
				return err
			}
			rep, err := p.Compile(dynBenchXlen, fullGather[me])
			if err != nil {
				return err
			}
			ps[me], reps[me] = p, rep
			return nil
		}
		delta, gather := rmDeltas[me], rmGather[me]
		if iter%2 == 0 {
			delta, gather = addDeltas[me], fullGather[me]
		}
		pd, err := dynamic.Discover(c, tp, delta)
		if err != nil {
			return err
		}
		st, err := ps[me].Patch(pd)
		if err != nil {
			return err
		}
		return ps[me].PatchCompiled(reps[me], dynBenchXlen, gather, st)
	})
	defer bw.stop()
	// Iteration 0 learns; warm one remove+add cycle.
	for i := 0; i < 3; i++ {
		if err := bw.iterate(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bw.iterate(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPatchVsRelearn(b *testing.B) {
	const K, dim = 64, 3
	b.Run(fmt.Sprintf("relearn/K=%d", K), func(b *testing.B) { benchRelearn(b, K, dim) })
	b.Run(fmt.Sprintf("patch/K=%d", K), func(b *testing.B) { benchPatch(b, K, dim) })
}

// TestPatchedReplayRunAllocs gates the steady-state allocation contract
// across pattern churn: after the world's compiled replays have been through
// Discover → Patch → PatchCompiled, Replay.Run must still allocate nothing.
func TestPatchedReplayRunAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; the gate runs in the non-race CI job")
	}
	const K, dim = 16, 2
	tp, err := vpt.NewBalanced(K, dim)
	if err != nil {
		t.Fatal(err)
	}
	pairs := dynBenchPattern(K)
	toggles := dynBenchToggles(pairs, 0.05)
	rmDeltas := make([]dynamic.Delta, K)
	addDeltas := make([]dynamic.Delta, K)
	for _, pr := range toggles {
		rmDeltas[pr.src].Remove = append(rmDeltas[pr.src].Remove, pr.dst)
		addDeltas[pr.src].Add = append(addDeltas[pr.src].Add, dynamic.Announce{Dst: pr.dst, Size: pairs[pr]})
	}
	removed := map[dynBenchPair]int{}
	for pr, size := range pairs {
		removed[pr] = size
	}
	for _, pr := range toggles {
		delete(removed, pr)
	}

	reps := make([]*core.Replay, K)
	xs := make([][]float64, K)
	halos := make([][]float64, K)
	bw := startDynBenchWorld(t, K, func(c runtime.Comm, iter int) error {
		me := c.Rank()
		switch iter {
		case 0: // learn + compile + patch through a full remove/add cycle
			p, _, err := core.NewPersistent(c, tp, dynBenchPayloads(me, pairs))
			if err != nil {
				return err
			}
			rep, err := p.Compile(dynBenchXlen, dynBenchGather(me, pairs))
			if err != nil {
				return err
			}
			for _, cycle := range []struct {
				delta  dynamic.Delta
				gather map[int][]int32
			}{
				{rmDeltas[me], dynBenchGather(me, removed)},
				{addDeltas[me], dynBenchGather(me, pairs)},
			} {
				pd, err := dynamic.Discover(c, tp, cycle.delta)
				if err != nil {
					return err
				}
				st, err := p.Patch(pd)
				if err != nil {
					return err
				}
				if err := p.PatchCompiled(rep, dynBenchXlen, cycle.gather, st); err != nil {
					return err
				}
			}
			reps[me] = rep
			xs[me] = make([]float64, dynBenchXlen)
			for i := range xs[me] {
				xs[me][i] = float64(me*dynBenchXlen + i)
			}
			halos[me] = make([]float64, rep.HaloWords())
			return nil
		default: // steady-state replay of the patched schedule
			return reps[me].Run(c, xs[me], halos[me])
		}
	})
	defer bw.stop()
	// Learning/patching step, then warm the pools and high-water marks.
	for i := 0; i < 4; i++ {
		if err := bw.iterate(); err != nil {
			t.Fatal(err)
		}
	}
	var stepErr error
	avg := testing.AllocsPerRun(20, func() {
		if err := bw.iterate(); err != nil && stepErr == nil {
			stepErr = err
		}
	})
	if stepErr != nil {
		t.Fatal(stepErr)
	}
	if avg != 0 {
		t.Fatalf("patched Replay.Run allocates %.2f times per op across %d ranks, want 0", avg, K)
	}
}

// dynBenchReport is the BENCH_dynamic.json schema: the patch-vs-relearn
// headline from BenchmarkPatchVsRelearn plus the mutate-rate × K sweep
// (the same rows `stfwbench -exp dynamic` prints).
type dynBenchReport struct {
	Note           string                   `json:"note"`
	K              int                      `json:"k"`
	TogglePairs    int                      `json:"toggle_pairs"`
	PatternPairs   int                      `json:"pattern_pairs"`
	RelearnNsPerOp float64                  `json:"relearn_ns_per_op"`
	PatchNsPerOp   float64                  `json:"patch_ns_per_op"`
	Speedup        float64                  `json:"speedup"`
	Sweep          []experiments.DynamicRow `json:"sweep"`
}

// TestWriteDynamicBenchJSON measures BenchmarkPatchVsRelearn via
// testing.Benchmark, gates the ≥5× acceptance bar, runs the stfwbench
// mutate-rate sweep, and writes the combined report to the path named by
// BENCH_DYNAMIC_JSON.
func TestWriteDynamicBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_DYNAMIC_JSON")
	if path == "" {
		t.Skip("BENCH_DYNAMIC_JSON not set")
	}
	const K, dim = 64, 3
	pairs := dynBenchPattern(K)
	relearn := testing.Benchmark(func(b *testing.B) { benchRelearn(b, K, dim) })
	patch := testing.Benchmark(func(b *testing.B) { benchPatch(b, K, dim) })
	report := dynBenchReport{
		Note: "one op = the whole K-rank chanpt world absorbs one ~1.5% mutation batch: " +
			"relearn = NewPersistent+Compile from scratch, patch = Discover census + Patch + PatchCompiled",
		K:              K,
		TogglePairs:    len(dynBenchToggles(pairs, 0.015)),
		PatternPairs:   len(pairs),
		RelearnNsPerOp: float64(relearn.T.Nanoseconds()) / float64(relearn.N),
		PatchNsPerOp:   float64(patch.T.Nanoseconds()) / float64(patch.N),
	}
	report.Speedup = report.RelearnNsPerOp / report.PatchNsPerOp
	t.Logf("relearn %.0f ns/op (N=%d), patch %.0f ns/op (N=%d): %.1fx",
		report.RelearnNsPerOp, relearn.N, report.PatchNsPerOp, patch.N, report.Speedup)
	if report.Speedup < 5 {
		t.Errorf("patching a %d/%d-pair dirty schedule is only %.1fx cheaper than relearning, want >=5x",
			report.TogglePairs, report.PatternPairs, report.Speedup)
	}
	sweep, err := experiments.DynamicSweep(experiments.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	report.Sweep = sweep
	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}
