// Package stfw is a Go implementation of the message-regularization scheme
// of Selvitopi & Aykanat, "Regularizing Irregularly Sparse Point-to-point
// Communications" (SC '19): processes are organized into a virtual process
// topology (VPT) T_n(k1,...,kn) and an arbitrary set of point-to-point
// messages is realized by an n-stage store-and-forward algorithm in which a
// process talks only to its dimension-d neighbors in stage d. The maximum
// per-process message count drops from O(K) to sum_d (k_d - 1) — as low as
// lg K — at the price of increased communication volume, a trade-off
// controlled by the topology dimension.
//
// The package is a facade over the internal packages:
//
//   - topology construction and analysis (internal/vpt, internal/core)
//   - the store-and-forward executor and the direct baseline, both running
//     over pluggable transports (internal/runtime, internal/transport/...)
//   - exact static planning of a schedule's message counts, volumes and
//     buffer usage without executing it (internal/core)
//   - machine cost models that price a schedule on BlueGene/Q-, Cray XK7-
//     and Cray XC40-like networks (internal/netsim)
//
// See the examples directory for runnable end-to-end programs and
// cmd/stfwbench for the harness that regenerates the paper's tables and
// figures.
package stfw

import (
	"stfw/internal/core"
	"stfw/internal/metrics"
	"stfw/internal/netsim"
	"stfw/internal/runtime"
	"stfw/internal/transport/chanpt"
	"stfw/internal/transport/tcpnet"
	"stfw/internal/vpt"
)

// Topology is a virtual process topology (re-exported from the internal
// implementation; see NewTopology, BalancedTopology, DirectTopology).
type Topology = vpt.Topology

// Comm is one rank's endpoint into a world of ranks; see LocalWorld and
// TCPWorld for in-process constructors.
type Comm = runtime.Comm

// Delivered carries the payloads an exchange delivered to a rank.
type Delivered = core.Delivered

// NewTopology builds a VPT with explicit dimension sizes k_1..k_n (each at
// least 2).
func NewTopology(dims ...int) (*Topology, error) { return vpt.New(dims...) }

// BalancedTopology builds the paper's optimal n-dimensional VPT for a
// power-of-two K: dimension sizes within a factor of two of each other,
// minimizing the message-count bound sum_d (k_d - 1).
func BalancedTopology(K, n int) (*Topology, error) { return vpt.NewBalanced(K, n) }

// DirectTopology is the 1-dimensional VPT in which every pair of processes
// may communicate directly; the exchange degenerates to the baseline.
func DirectTopology(K int) (*Topology, error) { return vpt.Direct(K) }

// MaxTopologyDim returns lg2(K), the highest VPT dimension available for a
// power-of-two K (the hypercube).
func MaxTopologyDim(K int) int { return vpt.MaxDim(K) }

// ExchangeOpt configures an Exchange or ExchangeDirect call; see Ordered
// and WithPlan.
type ExchangeOpt = core.ExchangeOpt

// Ordered selects the stage machine's legacy ordered discipline — sends
// issued inline with one fresh frame copy each, receives in fixed neighbor
// order — instead of the default pipelined one (pooled frame buffers,
// receives in arrival order). The paper-reproduction experiments use it to
// stay bit-identical with the original executor.
func Ordered() ExchangeOpt { return core.Ordered() }

// WithPlan switches the exchange onto the plan-driven schedule front-end:
// the per-rank stage schedule is derived once from the static plan (and
// cached inside it), and its exact per-frame occupancy pre-sizes the
// forward buffers, eliminating both per-call schedule construction and
// buffer growth on the hot path.
func WithPlan(p *Plan) ExchangeOpt { return core.WithPlan(p) }

// Exchange performs the store-and-forward exchange (Algorithm 1 of the
// paper) collectively on all ranks of c: each rank contributes the payloads
// it wants delivered (destination rank -> bytes) and receives the payloads
// destined for it. The per-rank nonempty message count is bounded by
// sum_d (k_d - 1).
func Exchange(c Comm, t *Topology, payloads map[int][]byte, opts ...ExchangeOpt) (*Delivered, error) {
	return core.Exchange(c, t, payloads, opts...)
}

// ExchangeDirect performs the baseline direct exchange: payloads go
// straight to their destinations. recvFrom lists the ranks this rank will
// receive from (known from the application's data distribution, or
// discovered with DiscoverSources).
func ExchangeDirect(c Comm, payloads map[int][]byte, recvFrom []int, opts ...ExchangeOpt) (*Delivered, error) {
	return core.DirectExchange(c, payloads, recvFrom, opts...)
}

// DiscoverSources lets a rank learn which ranks will send to it when the
// receive side of the pattern is unknown, using a regularized exchange of
// empty announcements.
func DiscoverSources(c Comm, dests []int) ([]int, error) {
	return core.CountExchange(c, dests)
}

// Persistent is a reusable exchange for a fixed communication pattern: the
// learning run records the store-and-forward frame layout, replays execute
// the learned schedule directly and skip all routing decisions (with
// arrival-order receives and pooled zero-copy frames; see DESIGN.md §8).
// Made for iterative applications where the same exchange repeats every
// step.
type Persistent = core.Persistent

// NewPersistent performs the learning exchange and returns both its
// deliveries and the reusable pattern; call Run on the result for
// subsequent iterations with fresh payload bytes (same destinations).
func NewPersistent(c Comm, t *Topology, payloads map[int][]byte) (*Persistent, *Delivered, error) {
	return core.NewPersistent(c, t, payloads)
}

// Replay is a fully compiled iteration program over a learned pattern:
// fixed payload sizes, preallocated frame templates, gather/forward/deliver
// ops by precomputed offset. Obtain one with Persistent.Compile (STFW) or
// NewDirectReplay (baseline); a steady-state Run allocates nothing on the
// in-process transport. See DESIGN.md §6.
type Replay = core.Replay

// NewDirectReplay compiles the direct baseline exchange for one rank:
// float64 payloads x[gather[dst]] per destination, one expected frame per
// source in srcWords, deliveries scattered into Run's halo slice sorted by
// source rank.
func NewDirectReplay(me, size, xlen int, gather map[int][]int32, srcWords map[int]int) (*Replay, error) {
	return core.NewDirectReplay(me, size, xlen, gather, srcWords)
}

// LocalWorld creates K ranks connected by in-process channels, the fastest
// way to run the algorithm inside one OS process (tests, benchmarks,
// simulations).
func LocalWorld(K int) (*chanpt.World, error) { return chanpt.NewWorld(K, 2) }

// TCPWorld creates K ranks connected by real TCP sockets on the loopback
// interface.
func TCPWorld(K int) (*tcpnet.World, error) { return tcpnet.NewWorld(K) }

// SendSets declares, for planning purposes, who sends how many 8-byte words
// to whom.
type SendSets = core.SendSets

// NewSendSets creates empty send sets for K ranks; fill with Add and call
// Normalize before planning.
func NewSendSets(K int) *SendSets { return core.NewSendSets(K) }

// Plan is the exact schedule the store-and-forward scheme produces for
// given send sets: per-stage frames, per-rank message counts, volumes, and
// buffer occupancy, computed without executing anything.
type Plan = core.Plan

// BuildPlan routes the send sets through the topology; use a
// DirectTopology plan (or BuildDirectPlan) for the baseline.
func BuildPlan(t *Topology, s *SendSets) (*Plan, error) { return core.BuildPlan(t, s) }

// BuildDirectPlan returns the baseline schedule without a topology.
func BuildDirectPlan(s *SendSets) (*Plan, error) { return core.BuildDirectPlan(s) }

// Summary carries the paper's per-run metrics (maximum/average message
// count, average volume, buffer bytes; times filled when priced on a
// Machine).
type Summary = metrics.Summary

// Summarize computes the metric summary of a plan.
func Summarize(scheme string, p *Plan, s *SendSets) (Summary, error) {
	return metrics.Summarize(scheme, p, s)
}

// Machine is a priced network model; see BlueGeneQ, CrayXK7, CrayXC40.
type Machine = netsim.Machine

// BlueGeneQ returns a BlueGene/Q-like profile (5D torus) sized for K ranks.
func BlueGeneQ(K int) (*Machine, error) { return netsim.BlueGeneQ(K) }

// CrayXK7 returns a Cray XK7-like profile (3D torus, Gemini).
func CrayXK7(K int) (*Machine, error) { return netsim.CrayXK7(K) }

// CrayXC40 returns a Cray XC40-like profile (Dragonfly, Aries).
func CrayXC40(K int) (*Machine, error) { return netsim.CrayXC40(K) }

// CommTime prices a schedule on a machine model (seconds).
func CommTime(m *Machine, p *Plan) (float64, error) { return netsim.CommTime(m, p) }

// MessageBound returns the per-process upper bound on messages sent by the
// store-and-forward scheme on t: sum_d (k_d - 1).
func MessageBound(t *Topology) int { return core.MaxMessageBound(t) }

// VolumeBlowup returns the exact ratio of store-and-forward volume to
// direct volume for a complete exchange on a uniform k^n topology
// (Section 4 of the paper: 3.01 for T4 at K=256, 4.02 for T8, 1.88 for T2).
func VolumeBlowup(k, n int) float64 { return core.VolumeBlowup(k, n) }
