package stfw

// The hierarchical-composite acceptance gate: on a simulated two-node
// split of the K=64 learned-replay workload, routing intra-node pairs over
// chanpt and only inter-node pairs over udpnet must beat pure udpnet by
// >=1.15x frames/sec. The replay runs the planner's node-aligned
// factorization T2(32,2) — dimension 0 spans exactly one node, so its
// stage never touches the wire under the mux — on both transports, making
// the comparison a pure transport substitution.
//
// TestWriteHierBenchJSON renders the measurement into BENCH_hier.json when
// BENCH_HIER_JSON names an output path.

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"stfw/internal/vpt"
)

// hierBenchReport is the BENCH_hier.json schema.
type hierBenchReport struct {
	Note          string  `json:"note"`
	K             int     `json:"k"`
	Dims          []int   `json:"dims"`
	Nodes         int     `json:"nodes"`
	PayloadBytes  int     `json:"payload_bytes"`
	UDPFramesSec  float64 `json:"udpnet_frames_per_sec"`
	HierFramesSec float64 `json:"hier_frames_per_sec"`
	HierOverUDP   float64 `json:"hier_over_udp"`
}

// TestWriteHierBenchJSON measures pure udpnet against the hierarchical
// composite via testing.Benchmark, gates the >=1.15x acceptance bar, and
// writes the report to the path named by BENCH_HIER_JSON.
func TestWriteHierBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_HIER_JSON")
	if path == "" {
		t.Skip("BENCH_HIER_JSON not set")
	}
	tp, err := vpt.New(32, 2)
	if err != nil {
		t.Fatal(err)
	}
	measure := func(transport string) float64 {
		var fps float64
		res := testing.Benchmark(func(b *testing.B) {
			comms, stop := tptBenchWorld(b, transport, tptBenchK)
			defer stop()
			fps = runTransportThroughputOn(b, comms, tp)
		})
		t.Logf("%s: %v, %.0f frames/sec", transport, res, fps)
		return fps
	}
	report := hierBenchReport{
		Note: fmt.Sprintf("K=%d dims=[32 2] learned-replay throughput on a simulated 2-node split, "+
			"%d dests x %dB per rank: pure udpnet vs hier (chanpt intra-node + udpnet inter-node)",
			tptBenchK, tptBenchDests, tptBenchPayload),
		K:            tptBenchK,
		Dims:         []int{32, 2},
		Nodes:        2,
		PayloadBytes: tptBenchPayload,
	}
	report.UDPFramesSec = measure("udpnet")
	report.HierFramesSec = measure("hier")
	report.HierOverUDP = report.HierFramesSec / report.UDPFramesSec
	if report.HierOverUDP < 1.15 {
		t.Errorf("hier %.0f frames/sec is only %.2fx udpnet's %.0f, want >=1.15x",
			report.HierFramesSec, report.HierOverUDP, report.UDPFramesSec)
	}
	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}
