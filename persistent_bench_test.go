package stfw

// BenchmarkPersistentIteration measures one steady-state Persistent.Run
// iteration — every rank replays the learned store-and-forward pattern with
// fresh payload bytes — at K ∈ {64, 256}. This is the map-based replay tier
// (variable payload sizes); the fully compiled tier is covered by
// BenchmarkSessionIteration. TestWritePersistentBenchJSON renders the same
// measurement into BENCH_persistent.json when BENCH_PERSISTENT_JSON names an
// output path.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"stfw/internal/core"
	"stfw/internal/runtime"
	"stfw/internal/transport/chanpt"
	"stfw/internal/vpt"
)

type persistentBenchCase struct {
	K, dim int
}

func persistentBenchCases() []persistentBenchCase {
	return []persistentBenchCase{{K: 64, dim: 3}, {K: 256, dim: 4}}
}

// persistentBenchPayloads builds the per-rank destination payload maps of a
// seeded irregular pattern: every rank sends 16..128-word payloads to a
// handful of random destinations (plus two hot-spot ranks with near-complete
// send lists, mirroring the conformance suite's shape).
func persistentBenchPayloads(K int) []map[int][]byte {
	rng := rand.New(rand.NewSource(int64(K)))
	out := make([]map[int][]byte, K)
	for src := range out {
		out[src] = map[int][]byte{}
	}
	addDst := func(src, dst int) {
		if src == dst {
			return
		}
		words := 16 + rng.Intn(112)
		buf := make([]byte, 8*words)
		for i := range buf {
			buf[i] = byte(src*17 + dst*29 + i)
		}
		out[src][dst] = buf
	}
	for h := 0; h < 2; h++ {
		src := rng.Intn(K)
		for dst := 0; dst < K; dst++ {
			if rng.Intn(4) != 0 {
				addDst(src, dst)
			}
		}
	}
	for src := 0; src < K; src++ {
		for l := 0; l < 4; l++ {
			addDst(src, rng.Intn(K))
		}
	}
	return out
}

// persistentBenchWorld keeps one goroutine per rank alive across benchmark
// iterations, each holding its learned Persistent, so one "op" is a pure
// lockstep replay with no goroutine startup or learning in the measured
// region.
type persistentBenchWorld struct {
	step []chan struct{}
	done []chan error
}

func startPersistentBenchWorld(tb testing.TB, K, dim int, payloads []map[int][]byte) *persistentBenchWorld {
	tb.Helper()
	tp, err := vpt.NewBalanced(K, dim)
	if err != nil {
		tb.Fatal(err)
	}
	w, err := chanpt.NewWorld(K, 2)
	if err != nil {
		tb.Fatal(err)
	}
	bw := &persistentBenchWorld{step: make([]chan struct{}, K), done: make([]chan error, K)}
	comms := w.Comms()
	for r := 0; r < K; r++ {
		bw.step[r] = make(chan struct{})
		bw.done[r] = make(chan error)
		go func(c runtime.Comm, step chan struct{}, done chan error) {
			p, _, err := core.NewPersistent(c, tp, payloads[c.Rank()])
			for range step {
				if err == nil {
					_, err = p.Run(c, payloads[c.Rank()])
				}
				done <- err
			}
		}(comms[r], bw.step[r], bw.done[r])
	}
	return bw
}

func (bw *persistentBenchWorld) iterate() error {
	for _, ch := range bw.step {
		ch <- struct{}{}
	}
	var first error
	for _, ch := range bw.done {
		if err := <-ch; err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (bw *persistentBenchWorld) stop() {
	for _, ch := range bw.step {
		close(ch)
	}
}

func benchPersistentIteration(b *testing.B, K, dim int) {
	payloads := persistentBenchPayloads(K)
	bw := startPersistentBenchWorld(b, K, dim, payloads)
	defer bw.stop()
	// Warm up pools, matcher queues, and the replay's reused store.
	for i := 0; i < 2; i++ {
		if err := bw.iterate(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bw.iterate(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPersistentIteration(b *testing.B) {
	for _, c := range persistentBenchCases() {
		b.Run(fmt.Sprintf("K=%d", c.K), func(b *testing.B) {
			benchPersistentIteration(b, c.K, c.dim)
		})
	}
}

// TestPersistentRunAllocs gates the replay path's allocation budget: one
// steady-state lockstep iteration of the K=64 world must stay well under the
// seed executor's footprint (~2538 allocs/op, dominated by per-frame
// append([]byte(nil), ...) copies and per-iteration submessage slices). The
// pooled stage machine runs it at ~600; the threshold leaves headroom for
// scheduler noise while still failing if per-frame copies ever creep back.
func TestPersistentRunAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation gate needs steady-state iterations")
	}
	const K, dim = 64, 3
	payloads := persistentBenchPayloads(K)
	bw := startPersistentBenchWorld(t, K, dim, payloads)
	defer bw.stop()
	for i := 0; i < 2; i++ {
		if err := bw.iterate(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := bw.iterate(); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 1300 // seed: ~2538; pooled stage machine: ~600
	if allocs > budget {
		t.Errorf("persistent world iteration: %.0f allocs/op, budget %d", allocs, budget)
	}
	t.Logf("persistent world iteration: %.0f allocs/op (budget %d)", allocs, budget)
}

// persistentBenchResult is one BENCH_persistent.json entry.
type persistentBenchResult struct {
	K           int     `json:"k"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type persistentBenchReport struct {
	Note    string                  `json:"note"`
	Results []persistentBenchResult `json:"results"`
}

// TestWritePersistentBenchJSON measures every BenchmarkPersistentIteration
// case via testing.Benchmark and writes the report to the path named by
// BENCH_PERSISTENT_JSON.
func TestWritePersistentBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_PERSISTENT_JSON")
	if path == "" {
		t.Skip("BENCH_PERSISTENT_JSON not set")
	}
	report := persistentBenchReport{
		Note: "one op = all K ranks perform one steady-state Persistent.Run replay over the chanpt transport; allocs_per_op counts the whole world",
	}
	for _, c := range persistentBenchCases() {
		r := testing.Benchmark(func(b *testing.B) {
			benchPersistentIteration(b, c.K, c.dim)
		})
		nsOp := float64(r.T.Nanoseconds()) / float64(r.N)
		report.Results = append(report.Results, persistentBenchResult{
			K:           c.K,
			NsPerOp:     nsOp,
			AllocsPerOp: r.AllocsPerOp(),
		})
		t.Logf("K=%d: %.0f ns/op, %d allocs/op (N=%d)", c.K, nsOp, r.AllocsPerOp(), r.N)
	}
	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}
