package main

import "testing"

func TestRunModes(t *testing.T) {
	if err := run(63, 0, -1, "", ""); err == nil {
		t.Error("non-power-of-two K accepted")
	}
	if err := run(64, 0, -1, "", ""); err != nil {
		t.Errorf("table mode: %v", err)
	}
	if err := run(64, 3, 22, "", ""); err != nil {
		t.Errorf("neighborhood mode: %v", err)
	}
	if err := run(64, 3, 99, "", ""); err == nil {
		t.Error("out-of-range rank accepted")
	}
	if err := run(64, 3, -1, "5,42", ""); err != nil {
		t.Errorf("route mode: %v", err)
	}
	if err := run(64, 3, -1, "banana", ""); err == nil {
		t.Error("malformed route accepted")
	}
	if err := run(64, 3, -1, "5,99", ""); err == nil {
		t.Error("out-of-range route accepted")
	}
	for _, machine := range []string{"bgq", "xk7", "xc40"} {
		if err := run(64, 0, -1, "", machine); err != nil {
			t.Errorf("assignment mode %s: %v", machine, err)
		}
	}
	if err := run(64, 0, -1, "", "cm5"); err == nil {
		t.Error("unknown machine accepted")
	}
}
