// Command vptinfo prints, for a given number of processes, every virtual
// process topology the balanced scheme of Section 5 produces, together with
// the Section 4 analysis: the per-process message-count bound, the exact
// volume blowup of the worst-case complete exchange, the loose bound, and
// the expected forwards per submessage.
//
// Usage:
//
//	vptinfo -k 256                  # Section 5 schemes + Section 4 bounds
//	vptinfo -k 64 -n 3 -p 22        # a process's neighborhood (Figure 2)
//	vptinfo -k 64 -n 3 -route 5,42  # the dimension-ordered route (Section 3)
package main

import (
	"flag"
	"fmt"
	"os"

	"stfw/internal/core"
	"stfw/internal/vpt"
)

func main() {
	k := flag.Int("k", 256, "number of processes (power of two)")
	n := flag.Int("n", 0, "with -p or -route: VPT dimension (default: 3 or max)")
	p := flag.Int("p", -1, "show the neighborhood of this rank (Figure 2 of the paper)")
	route := flag.String("route", "", "show the dimension-ordered route between two ranks, e.g. -route 5,42")
	flag.Parse()
	if err := run(*k, *n, *p, *route); err != nil {
		fmt.Fprintf(os.Stderr, "vptinfo: %v\n", err)
		os.Exit(1)
	}
}

func pickTopo(K, n int) (*vpt.Topology, error) {
	if n <= 0 {
		n = 3
		if m := vpt.MaxDim(K); n > m {
			n = m
		}
	}
	return vpt.NewBalanced(K, n)
}

// showNeighborhood prints the paper's Figure 2: the neighbors of one
// process in each dimension of the VPT.
func showNeighborhood(K, n, p int) error {
	t, err := pickTopo(K, n)
	if err != nil {
		return err
	}
	if p < 0 || p >= K {
		return fmt.Errorf("rank %d out of range [0,%d)", p, K)
	}
	fmt.Printf("Topology %s; rank %d has digits %v\n", t, p, t.Coords(p))
	fmt.Printf("Total neighbors: %d (= message bound per exchange)\n\n", t.NumNeighbors())
	for d := 0; d < t.N(); d++ {
		fmt.Printf("dimension %d (stage %d, group size %d): %v\n",
			d, d+1, t.Dim(d), t.Neighbors(nil, p, d))
	}
	return nil
}

// showRoute prints the dimension-ordered store-and-forward route between
// two ranks, the e-cube path of Section 3.
func showRoute(K, n int, spec string) error {
	t, err := pickTopo(K, n)
	if err != nil {
		return err
	}
	var a, b int
	if _, err := fmt.Sscanf(spec, "%d,%d", &a, &b); err != nil {
		return fmt.Errorf("bad -route %q (want e.g. 5,42): %v", spec, err)
	}
	if a < 0 || a >= K || b < 0 || b >= K {
		return fmt.Errorf("route endpoints out of range [0,%d)", K)
	}
	fmt.Printf("Topology %s\n", t)
	fmt.Printf("route %d%v -> %d%v: Hamming distance %d\n",
		a, t.Coords(a), b, t.Coords(b), t.Hamming(a, b))
	cur := a
	for _, hop := range t.Path(nil, a, b) {
		fmt.Printf("  stage %d: %d%v -> %d%v\n",
			t.FirstDiff(cur, hop)+1, cur, t.Coords(cur), hop, t.Coords(hop))
		cur = hop
	}
	if a == b {
		fmt.Println("  (no hops: source equals destination)")
	}
	return nil
}

func run(K, n, p int, route string) error {
	if K < 2 || K&(K-1) != 0 {
		return fmt.Errorf("K must be a power of two >= 2, got %d", K)
	}
	if p >= 0 {
		return showNeighborhood(K, n, p)
	}
	if route != "" {
		return showRoute(K, n, route)
	}
	fmt.Printf("Virtual process topologies for K = %d processes\n\n", K)
	fmt.Printf("%-6s %-22s %10s %12s %12s %10s\n",
		"dim", "topology", "msg bound", "vol blowup", "loose bound", "avg hops")
	for n := 1; n <= vpt.MaxDim(K); n++ {
		t, err := vpt.NewBalanced(K, n)
		if err != nil {
			return err
		}
		blowup := core.TopologyVolumeBlowup(t)
		fmt.Printf("T%-5d %-22s %10d %12.2f %12d %10.2f\n",
			n, t.String(), core.MaxMessageBound(t), blowup, n, blowup)
	}
	fmt.Printf("\nmsg bound: per-process messages, sum_d (k_d - 1); BL would send up to %d.\n", K-1)
	fmt.Printf("vol blowup: exact forwarded volume over direct volume for the\n")
	fmt.Printf("worst-case complete exchange (equals mean hops per submessage).\n")
	return nil
}
