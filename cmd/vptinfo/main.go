// Command vptinfo prints, for a given number of processes, every virtual
// process topology the balanced scheme of Section 5 produces, together with
// the Section 4 analysis: the per-process message-count bound, the exact
// volume blowup of the worst-case complete exchange, the loose bound, and
// the expected forwards per submessage.
//
// Usage:
//
//	vptinfo -k 256                  # Section 5 schemes + Section 4 bounds
//	vptinfo -k 64 -n 3 -p 22        # a process's neighborhood (Figure 2)
//	vptinfo -k 64 -n 3 -route 5,42  # the dimension-ordered route (Section 3)
//	vptinfo -k 64 -machine xc40     # dimension → transport assignment (hier)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"stfw/internal/core"
	"stfw/internal/netsim"
	"stfw/internal/vpt"
)

func main() {
	k := flag.Int("k", 256, "number of processes (power of two)")
	n := flag.Int("n", 0, "with -p or -route: VPT dimension (default: 3 or max)")
	p := flag.Int("p", -1, "show the neighborhood of this rank (Figure 2 of the paper)")
	route := flag.String("route", "", "show the dimension-ordered route between two ranks, e.g. -route 5,42")
	machine := flag.String("machine", "", "show each balanced topology's dimension → transport assignment on this profile (bgq, xk7, xc40)")
	flag.Parse()
	if err := run(*k, *n, *p, *route, *machine); err != nil {
		fmt.Fprintf(os.Stderr, "vptinfo: %v\n", err)
		os.Exit(1)
	}
}

func pickTopo(K, n int) (*vpt.Topology, error) {
	if n <= 0 {
		n = 3
		if m := vpt.MaxDim(K); n > m {
			n = m
		}
	}
	return vpt.NewBalanced(K, n)
}

// showNeighborhood prints the paper's Figure 2: the neighbors of one
// process in each dimension of the VPT.
func showNeighborhood(K, n, p int) error {
	t, err := pickTopo(K, n)
	if err != nil {
		return err
	}
	if p < 0 || p >= K {
		return fmt.Errorf("rank %d out of range [0,%d)", p, K)
	}
	fmt.Printf("Topology %s; rank %d has digits %v\n", t, p, t.Coords(p))
	fmt.Printf("Total neighbors: %d (= message bound per exchange)\n\n", t.NumNeighbors())
	for d := 0; d < t.N(); d++ {
		fmt.Printf("dimension %d (stage %d, group size %d): %v\n",
			d, d+1, t.Dim(d), t.Neighbors(nil, p, d))
	}
	return nil
}

// showRoute prints the dimension-ordered store-and-forward route between
// two ranks, the e-cube path of Section 3.
func showRoute(K, n int, spec string) error {
	t, err := pickTopo(K, n)
	if err != nil {
		return err
	}
	var a, b int
	if _, err := fmt.Sscanf(spec, "%d,%d", &a, &b); err != nil {
		return fmt.Errorf("bad -route %q (want e.g. 5,42): %v", spec, err)
	}
	if a < 0 || a >= K || b < 0 || b >= K {
		return fmt.Errorf("route endpoints out of range [0,%d)", K)
	}
	fmt.Printf("Topology %s\n", t)
	fmt.Printf("route %d%v -> %d%v: Hamming distance %d\n",
		a, t.Coords(a), b, t.Coords(b), t.Hamming(a, b))
	cur := a
	for _, hop := range t.Path(nil, a, b) {
		fmt.Printf("  stage %d: %d%v -> %d%v\n",
			t.FirstDiff(cur, hop)+1, cur, t.Coords(cur), hop, t.Coords(hop))
		cur = hop
	}
	if a == b {
		fmt.Println("  (no hops: source equals destination)")
	}
	return nil
}

// showAssignment prints, for each balanced topology, which dimensions a
// hierarchical composite transport (internal/transport/hier) serves
// intra-node and which touch the wire, under the machine profile's linear
// rank packing. Dimension d is intra-node exactly when every dimension-d
// group fits inside (and aligns with) one node's rank block: the prefix
// product k_1*...*k_{d+1} must divide the ranks-per-node count — the
// structural version of the traffic-relative split mapping.PlanDims
// reports.
func showAssignment(K int, machine string) error {
	var m *netsim.Machine
	var err error
	switch machine {
	case "bgq":
		m, err = netsim.BlueGeneQ(K)
	case "xk7":
		m, err = netsim.CrayXK7(K)
	case "xc40":
		m, err = netsim.CrayXC40(K)
	default:
		return fmt.Errorf("unknown machine %q (want bgq, xk7, or xc40)", machine)
	}
	if err != nil {
		return err
	}
	g := m.RanksPerNode
	fmt.Printf("dimension → transport assignment on %s (%d ranks/node, linear packing)\n\n", m.Name, g)
	fmt.Printf("%-6s %-22s %5s  %s\n", "dim", "topology", "split", "assignment")
	for n := 1; n <= vpt.MaxDim(K); n++ {
		t, err := vpt.NewBalanced(K, n)
		if err != nil {
			return err
		}
		split := 0
		prefix := 1
		var parts []string
		for d := 0; d < t.N(); d++ {
			prefix *= t.Dim(d)
			intra := prefix <= g && g%prefix == 0
			if intra && split == d {
				split++
			}
			side := "wire"
			if intra {
				side = "intra"
			}
			parts = append(parts, fmt.Sprintf("d%d:%s", d, side))
		}
		fmt.Printf("T%-5d %-22s %5d  %s\n", n, t.String(), split, strings.Join(parts, " "))
	}
	fmt.Printf("\nsplit: leading dimensions whose stages a hier mux keeps entirely\n")
	fmt.Printf("intra-node (chanpt); the rest cross node boundaries (udpnet/tcpnet).\n")
	fmt.Printf("mapping.PlanDims refines this with the application's real traffic.\n")
	return nil
}

func run(K, n, p int, route, machine string) error {
	if K < 2 || K&(K-1) != 0 {
		return fmt.Errorf("K must be a power of two >= 2, got %d", K)
	}
	if machine != "" {
		return showAssignment(K, machine)
	}
	if p >= 0 {
		return showNeighborhood(K, n, p)
	}
	if route != "" {
		return showRoute(K, n, route)
	}
	fmt.Printf("Virtual process topologies for K = %d processes\n\n", K)
	fmt.Printf("%-6s %-22s %10s %12s %12s %10s\n",
		"dim", "topology", "msg bound", "vol blowup", "loose bound", "avg hops")
	for n := 1; n <= vpt.MaxDim(K); n++ {
		t, err := vpt.NewBalanced(K, n)
		if err != nil {
			return err
		}
		blowup := core.TopologyVolumeBlowup(t)
		fmt.Printf("T%-5d %-22s %10d %12.2f %12d %10.2f\n",
			n, t.String(), core.MaxMessageBound(t), blowup, n, blowup)
	}
	fmt.Printf("\nmsg bound: per-process messages, sum_d (k_d - 1); BL would send up to %d.\n", K-1)
	fmt.Printf("vol blowup: exact forwarded volume over direct volume for the\n")
	fmt.Printf("worst-case complete exchange (equals mean hops per submessage).\n")
	return nil
}
