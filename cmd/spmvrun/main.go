// Command spmvrun executes a real distributed SpMV — the paper's evaluation
// kernel — inside this process, with one goroutine per rank, over the
// channel or TCP transport, using either the direct baseline or the
// store-and-forward scheme, and verifies the result against the serial
// multiply.
//
// Usage:
//
//	spmvrun -matrix gupta2 -k 64 -dim 3 -scale 16 -transport chan
//	spmvrun -matrix sparsine -k 16 -method bl -transport tcp
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"time"

	"stfw/internal/core"
	"stfw/internal/metrics"
	"stfw/internal/partition"
	"stfw/internal/runtime"
	"stfw/internal/sparse"
	"stfw/internal/spmv"
	"stfw/internal/telemetry"
	"stfw/internal/trace"
	"stfw/internal/transport/chanpt"
	"stfw/internal/transport/tcpnet"
	"stfw/internal/vpt"
)

// config carries every CLI knob of one spmvrun invocation.
type config struct {
	matrix     string
	k          int
	dim        int
	scale      int
	method     string
	transport  string
	iters      int
	doTrace    bool // plan-conformance recording (internal/trace)
	telemetry  bool // live counters + span timelines (internal/telemetry)
	traceOut   string
	debugAddr  string
	cpuProfile string
	memProfile string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.matrix, "matrix", "sparsine", "catalog matrix name")
	flag.IntVar(&cfg.k, "k", 64, "number of ranks (power of two)")
	flag.IntVar(&cfg.dim, "dim", 3, "VPT dimension for STFW")
	flag.IntVar(&cfg.scale, "scale", 16, "matrix shrink factor")
	flag.StringVar(&cfg.method, "method", "stfw", "exchange method: bl or stfw")
	flag.StringVar(&cfg.transport, "transport", "chan", "transport: chan or tcp")
	flag.IntVar(&cfg.iters, "iters", 3, "SpMV iterations")
	flag.BoolVar(&cfg.doTrace, "trace", false, "record the exchange, verify it against the plan, print the per-stage timeline")
	flag.BoolVar(&cfg.telemetry, "telemetry", false, "collect live per-rank stage timelines and hot-path counters")
	flag.StringVar(&cfg.traceOut, "trace-out", "", "write a Chrome trace-event JSON of the run (implies -telemetry; open in ui.perfetto.dev)")
	flag.StringVar(&cfg.debugAddr, "debug-addr", "", "serve /debug (expvar, pprof, telemetry) on this address, e.g. 127.0.0.1:8642")
	flag.StringVar(&cfg.cpuProfile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&cfg.memProfile, "memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "spmvrun: %v\n", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	matrix, K, dim, scale := cfg.matrix, cfg.k, cfg.dim, cfg.scale
	method, transport, iters, doTrace := cfg.method, cfg.transport, cfg.iters, cfg.doTrace

	stopProfiles, err := telemetry.StartProfiles(cfg.cpuProfile, cfg.memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintf(os.Stderr, "spmvrun: %v\n", err)
		}
	}()

	fmt.Printf("generating %s (scale %d)...\n", matrix, scale)
	a, err := sparse.CatalogMatrix(matrix, scale)
	if err != nil {
		return err
	}
	st := sparse.ComputeStats(a)
	fmt.Printf("  %dx%d, %d nonzeros, max degree %d, cv %.2f\n",
		st.Rows, st.Cols, st.NNZ, st.MaxDegree, st.CV)

	part, err := partition.Greedy(a, K, partition.DefaultGreedy())
	if err != nil {
		return err
	}
	pat, err := spmv.BuildPattern(a, part)
	if err != nil {
		return err
	}
	sends, err := pat.SendSets()
	if err != nil {
		return err
	}

	opt := spmv.Options{Method: spmv.BL}
	var plan *core.Plan
	stages := 1
	if method == "stfw" {
		tp, err := vpt.NewBalanced(K, dim)
		if err != nil {
			return err
		}
		opt = spmv.Options{Method: spmv.STFW, Topo: tp}
		stages = tp.N()
		fmt.Printf("topology: %s, message bound %d (BL bound %d)\n",
			tp, core.MaxMessageBound(tp), K-1)
		plan, err = core.BuildPlan(tp, sends)
		if err != nil {
			return err
		}
	} else {
		plan, err = core.BuildDirectPlan(sends)
		if err != nil {
			return err
		}
	}

	// Live telemetry: one collector per rank; -trace-out and -debug-addr
	// imply collection.
	var reg *telemetry.Registry
	if cfg.telemetry || cfg.traceOut != "" || cfg.debugAddr != "" {
		reg, err = telemetry.New(telemetry.Config{Ranks: K, Stages: stages})
		if err != nil {
			return err
		}
		opt.Telemetry = reg
	}
	if cfg.debugAddr != "" {
		ds, err := reg.ServeDebug(cfg.debugAddr)
		if err != nil {
			return err
		}
		defer ds.Close()
		fmt.Printf("debug endpoint: http://%s/debug/\n", ds.Addr)
	}
	sum, err := metrics.Summarize(method, plan, sends)
	if err != nil {
		return err
	}
	fmt.Printf("plan: mmax %.0f, mavg %.1f, vavg %.0f words, buffer %.1f KB\n",
		sum.MMax, sum.MAvg, sum.VAvg, sum.BufferBytes/1024)

	rng := rand.New(rand.NewSource(42))
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want, err := a.MulVec(nil, x)
	if err != nil {
		return err
	}

	var recorder *trace.Recorder
	if doTrace {
		recorder = trace.NewRecorder(dim)
	}
	runWorld := func(fn runtime.RankFunc) error {
		var comms []runtime.Comm
		switch transport {
		case "chan":
			w, err := chanpt.NewWorld(K, K)
			if err != nil {
				return err
			}
			comms = w.Comms()
		case "tcp":
			w, err := tcpnet.NewWorld(K)
			if err != nil {
				return err
			}
			defer w.Close()
			comms = w.Comms()
		default:
			return fmt.Errorf("unknown transport %q", transport)
		}
		if recorder != nil {
			for i, c := range comms {
				comms[i] = recorder.Wrap(c)
			}
		}
		reg.WrapComms(comms, func(tag int) (int, bool) {
			return core.TagStage(tag, stages)
		})
		return runtime.Run(comms, fn)
	}

	if !doTrace {
		// Steady-state path: one persistent world, one compiled session per
		// rank, all iterations inside a single collective run with a
		// per-iteration phase breakdown.
		if err := runSessions(runWorld, a, part, pat, x, want, opt, transport, K, iters); err != nil {
			return err
		}
		fmt.Println("verified: parallel result matches serial multiply")
		return finishTelemetry(reg, cfg.traceOut)
	}

	for it := 0; it < iters; it++ {
		if recorder != nil {
			recorder.Reset()
		}
		ys := make([][]float64, K)
		start := time.Now()
		err := runWorld(func(c runtime.Comm) error {
			y, err := spmv.Run(c, a, part, pat, x, opt)
			if err != nil {
				return err
			}
			ys[c.Rank()] = y
			return nil
		})
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		got, err := spmv.Reduce(part, ys)
		if err != nil {
			return err
		}
		var maxErr float64
		for i := range want {
			if e := math.Abs(got[i] - want[i]); e > maxErr {
				maxErr = e
			}
		}
		fmt.Printf("iter %d: %v wall clock (%s transport), max |err| vs serial = %.2e\n",
			it, elapsed.Round(time.Microsecond), transport, maxErr)
		if maxErr > 1e-9 {
			return fmt.Errorf("verification FAILED: max error %g", maxErr)
		}
		if recorder != nil && method == "stfw" {
			events := recorder.Events()
			if err := trace.VerifyAgainstPlan(events, plan); err != nil {
				return fmt.Errorf("iteration %d deviated from the plan: %w", it, err)
			}
			if it == 0 {
				fmt.Println("\nper-stage timeline (execution verified frame-for-frame against the plan):")
				trace.RenderTimeline(os.Stdout, events, K)
				fmt.Println()
			}
		}
	}
	fmt.Println("verified: parallel result matches serial multiply")
	return finishTelemetry(reg, cfg.traceOut)
}

// finishTelemetry reports the collected run: the counter totals and
// histograms on stdout, and the Perfetto trace when a path was given.
// No-op when telemetry was off.
func finishTelemetry(reg *telemetry.Registry, traceOut string) error {
	if reg == nil {
		return nil
	}
	s := reg.Snapshot()
	tot := s.Totals()
	fmt.Printf("\ntelemetry: %d frames / %d bytes sent, %d submessages forwarded (%d bytes)\n",
		tot.Sends, tot.SendBytes, tot.Forwards, tot.FwdBytes)
	reg.WriteHistograms(os.Stdout)
	if traceOut != "" {
		if err := reg.WriteTraceFile(traceOut); err != nil {
			return err
		}
		fmt.Printf("trace written to %s (open in ui.perfetto.dev)\n", traceOut)
	}
	return nil
}

// runSessions executes all iterations through persistent per-rank sessions
// inside one world run, reporting wall clock and the per-phase breakdown
// (gather / exchange / kernel / reduce) every iteration. Phase maxima are
// taken across ranks — the slowest rank is the iteration's critical path.
func runSessions(runWorld func(runtime.RankFunc) error, a *sparse.CSR, part *partition.Partition,
	pat *spmv.Pattern, x, want []float64, opt spmv.Options, transport string, K, iters int) error {
	ys := make([][]float64, K)
	phases := make([]spmv.PhaseTimings, K)
	return runWorld(func(c runtime.Comm) error {
		me := c.Rank()
		sess, err := spmv.NewSession(c, a, part, pat, opt)
		if err != nil {
			return err
		}
		var prev spmv.PhaseTimings
		for it := 0; it < iters; it++ {
			if err := c.Barrier(); err != nil {
				return err
			}
			start := time.Now()
			y, err := sess.Multiply(x)
			if err != nil {
				return fmt.Errorf("iteration %d rank %d: %w", it, me, err)
			}
			ys[me] = y
			tm := sess.Timings()
			phases[me] = spmv.PhaseTimings{
				Gather:   tm.Gather - prev.Gather,
				Exchange: tm.Exchange - prev.Exchange,
				Kernel:   tm.Kernel - prev.Kernel,
			}
			prev = tm
			if err := c.Barrier(); err != nil {
				return err
			}
			if me == 0 {
				wall := time.Since(start)
				rs := time.Now()
				got, err := spmv.Reduce(part, ys)
				if err != nil {
					return err
				}
				reduce := time.Since(rs)
				var maxErr float64
				for i := range want {
					if e := math.Abs(got[i] - want[i]); e > maxErr {
						maxErr = e
					}
				}
				var agg spmv.PhaseTimings
				for _, p := range phases {
					if p.Gather > agg.Gather {
						agg.Gather = p.Gather
					}
					if p.Exchange > agg.Exchange {
						agg.Exchange = p.Exchange
					}
					if p.Kernel > agg.Kernel {
						agg.Kernel = p.Kernel
					}
				}
				label := ""
				if it == 0 && opt.Method == spmv.STFW {
					label = " (learning)"
				}
				fmt.Printf("iter %d%s: %v wall (%s transport) | max over ranks: gather %v, exchange %v, kernel %v | reduce %v | max |err| = %.2e\n",
					it, label, wall.Round(time.Microsecond), transport,
					agg.Gather.Round(time.Microsecond), agg.Exchange.Round(time.Microsecond),
					agg.Kernel.Round(time.Microsecond), reduce.Round(time.Microsecond), maxErr)
				if maxErr > 1e-9 {
					return fmt.Errorf("verification FAILED at iteration %d: max error %g", it, maxErr)
				}
			}
			// Hold every rank until rank 0 has consumed ys: the compiled
			// sessions overwrite their result buffers on the next multiply.
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
}
