package main

import "testing"

func TestRunEndToEnd(t *testing.T) {
	// Small real runs through the CLI path: both methods, both transports,
	// with tracing on for STFW.
	if err := run("sparsine", 16, 3, 64, "stfw", "chan", 1, true); err != nil {
		t.Errorf("stfw/chan: %v", err)
	}
	if err := run("sparsine", 8, 2, 64, "bl", "chan", 1, false); err != nil {
		t.Errorf("bl/chan: %v", err)
	}
	if err := run("sparsine", 4, 2, 64, "stfw", "tcp", 1, false); err != nil {
		t.Errorf("stfw/tcp: %v", err)
	}
	if err := run("sparsine", 4, 2, 64, "stfw", "carrierpigeon", 1, false); err == nil {
		t.Error("unknown transport accepted")
	}
	if err := run("nope", 4, 2, 64, "stfw", "chan", 1, false); err == nil {
		t.Error("unknown matrix accepted")
	}
}
