package main

import (
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"stfw/internal/telemetry"
)

func TestRunEndToEnd(t *testing.T) {
	// Small real runs through the CLI path: both methods, both transports,
	// with tracing on for STFW.
	if err := run(config{matrix: "sparsine", k: 16, dim: 3, scale: 64, method: "stfw", transport: "chan", iters: 1, doTrace: true}); err != nil {
		t.Errorf("stfw/chan: %v", err)
	}
	if err := run(config{matrix: "sparsine", k: 8, dim: 2, scale: 64, method: "bl", transport: "chan", iters: 1}); err != nil {
		t.Errorf("bl/chan: %v", err)
	}
	if err := run(config{matrix: "sparsine", k: 4, dim: 2, scale: 64, method: "stfw", transport: "tcp", iters: 1}); err != nil {
		t.Errorf("stfw/tcp: %v", err)
	}
	if err := run(config{matrix: "sparsine", k: 4, dim: 2, scale: 64, method: "stfw", transport: "carrierpigeon", iters: 1}); err == nil {
		t.Error("unknown transport accepted")
	}
	if err := run(config{matrix: "nope", k: 4, dim: 2, scale: 64, method: "stfw", transport: "chan", iters: 1}); err == nil {
		t.Error("unknown matrix accepted")
	}
}

// TestRunWithTelemetry drives the full observability path through the CLI:
// live collection, trace export, debug endpoint, and profiles in one run.
func TestRunWithTelemetry(t *testing.T) {
	dir := t.TempDir()
	traceOut := filepath.Join(dir, "trace.json")
	cfg := config{
		matrix: "sparsine", k: 8, dim: 3, scale: 64,
		method: "stfw", transport: "chan", iters: 2,
		telemetry:  true,
		traceOut:   traceOut,
		debugAddr:  "127.0.0.1:0",
		cpuProfile: filepath.Join(dir, "cpu.pprof"),
		memProfile: filepath.Join(dir, "mem.pprof"),
	}
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(traceOut)
	if err != nil {
		t.Fatal(err)
	}
	st, err := telemetry.ValidateTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Tracks) != cfg.k {
		t.Fatalf("trace has %d tracks, want one per rank (%d)", len(st.Tracks), cfg.k)
	}
	for _, p := range []string{cfg.cpuProfile, cfg.memProfile} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Fatalf("profile %s missing or empty (err=%v)", p, err)
		}
	}
}

// TestRunTraceOutImpliesTelemetry: -trace-out alone must produce a valid
// trace without -telemetry, and the BL method gets a single-stage registry.
func TestRunTraceOutImpliesTelemetry(t *testing.T) {
	traceOut := filepath.Join(t.TempDir(), "bl.json")
	cfg := config{
		matrix: "sparsine", k: 4, dim: 2, scale: 64,
		method: "bl", transport: "chan", iters: 1, traceOut: traceOut,
	}
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(traceOut)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := telemetry.ValidateTrace(data); err != nil {
		t.Fatal(err)
	}
}

// TestDebugEndpointLive checks the debug server standalone: ServeDebug on
// an ephemeral port answers /debug/telemetry while a registry is live.
func TestDebugEndpointLive(t *testing.T) {
	reg := telemetry.MustNew(telemetry.Config{Ranks: 2, Stages: 1})
	ds, err := reg.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	resp, err := http.Get("http://" + ds.Addr + "/debug/telemetry")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/telemetry: %d", resp.StatusCode)
	}
}
