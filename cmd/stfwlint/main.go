// Command stfwlint is the multichecker for the repo's invariant analyzers
// (internal/analysis): framepool, nilrecv, atomicmix, lockedsend, tagspan,
// goroleak. It loads the packages named by its arguments (go list patterns;
// default ./...), runs every analyzer, prints surviving diagnostics in
// file:line:col form, and exits 1 if there were any.
//
// Test files are included by default — the invariants bind test harnesses
// too — with each package analyzed exactly as `go test` compiles it
// (in-package test files together with the production sources, external
// _test packages on their own). -tests=false restricts the run to
// production sources.
//
// Usage:
//
//	go run ./cmd/stfwlint ./...
//	go run ./cmd/stfwlint -only framepool,lockedsend ./internal/core/...
//	go run ./cmd/stfwlint -tests=false ./...
//
// Findings are suppressed per line with a //stfw:ignore <analyzer>
// directive; see internal/analysis.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"stfw/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	tests := flag.Bool("tests", true, "include test files (each package analyzed as its test variant)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: stfwlint [-only a,b] [-tests=false] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var sel []*analysis.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "stfwlint: unknown analyzer %q\n", name)
			os.Exit(2)
		}
		analyzers = sel
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.LoadPackages(analysis.LoadConfig{Tests: *tests}, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stfwlint:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stfwlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
