package main

import (
	"os"
	"path/filepath"
	"testing"

	"stfw/internal/sparse"
)

func TestRunModes(t *testing.T) {
	if err := run(true, "", false, 8, "", "."); err != nil {
		t.Errorf("list: %v", err)
	}
	if err := run(false, "cbuckle", false, 64, "", "."); err != nil {
		t.Errorf("stats: %v", err)
	}
	if err := run(false, "", false, 8, "", "."); err == nil {
		t.Error("no-op invocation accepted")
	}
	if err := run(false, "nope", false, 8, "", "."); err == nil {
		t.Error("unknown matrix accepted")
	}
	// Write one matrix and read it back.
	dir := t.TempDir()
	path := filepath.Join(dir, "out.mtx")
	if err := run(false, "cbuckle", false, 64, path, "."); err != nil {
		t.Fatalf("write: %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := sparse.ReadMatrixMarket(f)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows == 0 || m.NNZ() == 0 {
		t.Error("written matrix empty")
	}
}
