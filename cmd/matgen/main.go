// Command matgen generates the synthetic analogs of the paper's Table-1
// matrices and either prints their structure statistics or writes them to
// MatrixMarket files.
//
// Usage:
//
//	matgen -list                         # print catalog with Table-1 refs
//	matgen -name gupta2 -scale 8         # stats of one analog
//	matgen -name gupta2 -o gupta2.mtx    # write analog to a file
//	matgen -all -dir out/ -scale 8       # write every analog
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"stfw/internal/sparse"
)

func main() {
	list := flag.Bool("list", false, "list the catalog with Table-1 reference statistics")
	name := flag.String("name", "", "catalog matrix to generate")
	all := flag.Bool("all", false, "generate every catalog matrix")
	scale := flag.Int("scale", 8, "shrink factor (1 = full size)")
	out := flag.String("o", "", "output MatrixMarket file (default: print stats)")
	dir := flag.String("dir", ".", "output directory for -all")
	flag.Parse()

	if err := run(*list, *name, *all, *scale, *out, *dir); err != nil {
		fmt.Fprintf(os.Stderr, "matgen: %v\n", err)
		os.Exit(1)
	}
}

func run(list bool, name string, all bool, scale int, out, dir string) error {
	switch {
	case list:
		fmt.Printf("%-18s %9s %10s %7s %6s %7s\n", "matrix", "rows", "nnz", "max", "cv", "maxdr")
		for _, n := range sparse.CatalogNames() {
			e, err := sparse.Lookup(n)
			if err != nil {
				return err
			}
			fmt.Printf("%-18s %9d %10d %7d %6.2f %7.3f\n",
				n, e.RefRows, e.RefNNZ, e.RefMax, e.RefCV, e.RefMaxDR)
		}
		return nil
	case all:
		for _, n := range sparse.CatalogNames() {
			path := filepath.Join(dir, fmt.Sprintf("%s_s%d.mtx", n, scale))
			if err := writeOne(n, scale, path); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", path)
		}
		return nil
	case name != "":
		if out != "" {
			return writeOne(name, scale, out)
		}
		return printStats(name, scale)
	default:
		return fmt.Errorf("nothing to do: pass -list, -name, or -all (see -h)")
	}
}

func printStats(name string, scale int) error {
	m, err := sparse.CatalogMatrix(name, scale)
	if err != nil {
		return err
	}
	e, err := sparse.Lookup(name)
	if err != nil {
		return err
	}
	s := sparse.ComputeStats(m)
	fmt.Printf("%s at scale %d (reference values from Table 1 in parentheses)\n", name, scale)
	fmt.Printf("  rows:       %d (%d)\n", s.Rows, e.RefRows)
	fmt.Printf("  nnz:        %d (%d)\n", s.NNZ, e.RefNNZ)
	fmt.Printf("  max degree: %d (%d)\n", s.MaxDegree, e.RefMax)
	fmt.Printf("  avg degree: %.1f\n", s.AvgDegree)
	fmt.Printf("  cv:         %.2f (%.2f)\n", s.CV, e.RefCV)
	fmt.Printf("  maxdr:      %.3f (%.3f)\n", s.MaxDR, e.RefMaxDR)
	fmt.Printf("  symmetric:  %v\n", m.IsSymmetricPattern())
	return nil
}

func writeOne(name string, scale int, path string) error {
	m, err := sparse.CatalogMatrix(name, scale)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := sparse.WriteMatrixMarket(f, m); err != nil {
		return err
	}
	return f.Close()
}
