// Command stfwbench regenerates the tables and figures of the paper's
// evaluation (Section 6). Each experiment prints the same rows/series the
// paper reports, computed from the synthetic catalog analogs, the greedy
// partitioner, the exact store-and-forward router, and the machine cost
// models (see DESIGN.md for the substitutions).
//
// Usage:
//
//	stfwbench -exp table1|fig1|table2|fig6|fig7|fig8|fig9|table3|fig10|partitioners|skew|mapping|stencil|all [-scale N]
//
// -scale shrinks the catalog matrices (sparse.ScaleParams semantics);
// scale 1 is full size. The default of 8 preserves every regime the paper
// studies while keeping the full sweep fast on a laptop.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"stfw/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: table1, fig1, table2, fig6, fig7, fig8, fig9, table3, fig10, partitioners, skew, mapping, stencil, all")
	scale := flag.Int("scale", 8, "matrix shrink factor (1 = full-size structures)")
	flag.Parse()

	cfg := experiments.Config{Scale: *scale}
	if err := run(cfg, *exp); err != nil {
		fmt.Fprintf(os.Stderr, "stfwbench: %v\n", err)
		os.Exit(1)
	}
}

func run(cfg experiments.Config, exp string) error {
	runners := map[string]func(experiments.Config) error{
		"table1":       runTable1,
		"fig1":         runFig1,
		"table2":       runTable2,
		"fig6":         runFig6,
		"fig7":         runFig7,
		"fig8":         runFig8,
		"fig9":         runFig9,
		"table3":       runTable3,
		"fig10":        runFig10,
		"partitioners": runPartitioners,
		"skew":         runSkew,
		"mapping":      runMapping,
		"stencil":      runStencil,
	}
	order := []string{"table1", "fig1", "table2", "fig6", "fig7", "fig8", "fig9", "table3", "fig10",
		"partitioners", "skew", "mapping", "stencil"}
	if exp != "all" {
		r, ok := runners[exp]
		if !ok {
			return fmt.Errorf("unknown experiment %q", exp)
		}
		return timed(exp, cfg, r)
	}
	for _, name := range order {
		if err := timed(name, cfg, runners[name]); err != nil {
			return err
		}
	}
	return nil
}

func timed(name string, cfg experiments.Config, f func(experiments.Config) error) error {
	start := time.Now()
	if err := f(cfg); err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	fmt.Printf("\n[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	return nil
}

func runTable1(cfg experiments.Config) error {
	rows, err := experiments.Table1(cfg)
	if err != nil {
		return err
	}
	experiments.RenderTable1(os.Stdout, rows)
	return nil
}

func runFig1(cfg experiments.Config) error {
	series, err := experiments.Figure1(cfg)
	if err != nil {
		return err
	}
	experiments.RenderFigure1(os.Stdout, series)
	return nil
}

func runTable2(cfg experiments.Config) error {
	blocks, err := experiments.Table2(cfg)
	if err != nil {
		return err
	}
	experiments.RenderTable2(os.Stdout, blocks)
	return nil
}

func runFig6(cfg experiments.Config) error {
	rows, err := experiments.Figure6(cfg)
	if err != nil {
		return err
	}
	experiments.RenderFigure6(os.Stdout, rows)
	return nil
}

func runFig7(cfg experiments.Config) error {
	panels, err := experiments.Figure7(cfg)
	if err != nil {
		return err
	}
	experiments.RenderFigure7(os.Stdout, panels)
	return nil
}

func runFig8(cfg experiments.Config) error {
	series, err := experiments.Figure8(cfg)
	if err != nil {
		return err
	}
	experiments.RenderFigure8(os.Stdout, series)
	return nil
}

func runFig9(cfg experiments.Config) error {
	bars, err := experiments.Figure9(cfg)
	if err != nil {
		return err
	}
	experiments.RenderFigure9(os.Stdout, bars)
	return nil
}

func runTable3(cfg experiments.Config) error {
	blocks, err := experiments.Table3(cfg)
	if err != nil {
		return err
	}
	experiments.RenderTable3(os.Stdout, blocks)
	return nil
}

func runFig10(cfg experiments.Config) error {
	rows, err := experiments.Figure10(cfg)
	if err != nil {
		return err
	}
	experiments.RenderFigure10(os.Stdout, rows)
	return nil
}

func runPartitioners(cfg experiments.Config) error {
	rows, err := experiments.PartitionerAblation(cfg, "GaAsH6", 256)
	if err != nil {
		return err
	}
	experiments.RenderPartitionerAblation(os.Stdout, "GaAsH6", 256, rows)
	return nil
}

func runSkew(cfg experiments.Config) error {
	rows, err := experiments.SkewAblation(cfg, "gupta2", 512, 4)
	if err != nil {
		return err
	}
	experiments.RenderSkewAblation(os.Stdout, "gupta2", 512, 4, rows)
	return nil
}

func runMapping(cfg experiments.Config) error {
	rows, err := experiments.MappingAblation(cfg, "coAuthorsDBLP", 256, 4)
	if err != nil {
		return err
	}
	experiments.RenderMappingAblation(os.Stdout, "coAuthorsDBLP", 256, 4, rows)
	return nil
}

func runStencil(cfg experiments.Config) error {
	rows, err := experiments.StencilControl(256, 128)
	if err != nil {
		return err
	}
	experiments.RenderStencilControl(os.Stdout, 256, rows)
	return nil
}
