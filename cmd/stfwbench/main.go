// Command stfwbench regenerates the tables and figures of the paper's
// evaluation (Section 6). Each experiment prints the same rows/series the
// paper reports, computed from the synthetic catalog analogs, the greedy
// partitioner, the exact store-and-forward router, and the machine cost
// models (see DESIGN.md for the substitutions).
//
// Usage:
//
//	stfwbench -exp table1|fig1|table2|fig6|fig7|fig8|fig9|table3|fig10|partitioners|skew|mapping|stencil|dynamic|live|netstat|hier|all [-scale N]
//
// -scale shrinks the catalog matrices (sparse.ScaleParams semantics);
// scale 1 is full size. The default of 8 preserves every regime the paper
// studies while keeping the full sweep fast on a laptop.
//
// The "live" experiment is the observability counterpart of the model-based
// sweep: it executes a real K=64 STFW exchange in-process with the
// telemetry layer attached and reports what actually happened (frame
// counters, stage-latency histograms, and optionally a Perfetto trace via
// -trace-out). -telemetry additionally attaches collection to any
// experiment run; -debug-addr serves /debug (expvar, pprof, live trace)
// while the sweep executes; -cpuprofile/-memprofile write runtime/pprof
// profiles of the whole invocation.
//
// The "netstat" experiment goes one layer deeper: it runs the learned-
// replay exchange over a wire transport, reports the per-link wire stats
// (smoothed ack RTTs, resends, SACK repairs, ack suppression), the
// per-stage straggler table, and a measured-vs-model divergence table
// against the netsim cost model calibrated from the measured RTTs. With
// -procs P the world spans P OS processes whose snapshots are merged into
// one fleet report; -debug-addr then serves the merged /debug/fleet view.
//
// The "hier" experiment exercises the hierarchical composite transport: it
// prints the dimension-assignment planner's table (default vs planned
// factorization, node-crossing volume, modeled cost) and then measures the
// planned node-aligned replay twice — every frame over udpnet, and through
// the hier mux that keeps intra-node dimensions on the in-process transport
// — lining the measured speedup up against the modeled one.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"stfw/internal/experiments"
	"stfw/internal/telemetry"
)

// benchConfig is the CLI configuration: the experiment parameters plus the
// observability knobs.
type benchConfig struct {
	experiments.Config
	telemetry  bool
	traceOut   string
	debugAddr  string
	cpuProfile string
	memProfile string
	transport  string
	procs      int
}

func main() {
	// A re-exec'd slice of the -procs multi-process world skips the CLI
	// entirely; its configuration arrives via environment and inherited
	// file descriptors (see udp.go).
	if os.Getenv(udpChildEnv) != "" {
		if err := runUDPChild(); err != nil {
			fmt.Fprintf(os.Stderr, "stfwbench (udp child): %v\n", err)
			os.Exit(1)
		}
		return
	}

	var cfg benchConfig
	exp := flag.String("exp", "all", "experiment to run: table1, fig1, table2, fig6, fig7, fig8, fig9, table3, fig10, partitioners, skew, mapping, stencil, dynamic, live, netstat, hier, all")
	verify := flag.Bool("verify", false, "run the whole-world schedule verifier over the conformance topologies and exit")
	flag.IntVar(&cfg.Scale, "scale", 8, "matrix shrink factor (1 = full-size structures)")
	flag.BoolVar(&cfg.telemetry, "telemetry", false, "collect live telemetry (implied by -exp live)")
	flag.StringVar(&cfg.traceOut, "trace-out", "", "write a Chrome trace-event JSON of the live run (open in ui.perfetto.dev)")
	flag.StringVar(&cfg.debugAddr, "debug-addr", "", "serve /debug (expvar, pprof, telemetry) on this address while running")
	flag.StringVar(&cfg.cpuProfile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&cfg.memProfile, "memprofile", "", "write a heap profile to this file at exit")
	flag.StringVar(&cfg.transport, "transport", "chan", "live-run transport: chan (in-process channels), tcp (loopback TCP streams), udp (batched loopback datagrams), hier (two-node split: chanpt intra-node + udpnet inter-node)")
	flag.IntVar(&cfg.procs, "procs", 1, "with -transport udp: split the live world across this many OS processes (loopback multi-process mode)")
	flag.Parse()

	if *verify {
		if err := runVerify(); err != nil {
			fmt.Fprintf(os.Stderr, "stfwbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if err := run(cfg, *exp); err != nil {
		fmt.Fprintf(os.Stderr, "stfwbench: %v\n", err)
		os.Exit(1)
	}
}

func run(cfg benchConfig, exp string) error {
	stopProfiles, err := telemetry.StartProfiles(cfg.cpuProfile, cfg.memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintf(os.Stderr, "stfwbench: %v\n", err)
		}
	}()

	// The live experiment's world is fixed (K=64 over a 3-dimensional VPT),
	// so its registry can exist before the run — which lets -debug-addr
	// expose it while the exchange executes.
	var reg *telemetry.Registry
	if exp == "live" || cfg.telemetry || cfg.traceOut != "" {
		reg, err = telemetry.New(telemetry.Config{Ranks: liveK, Stages: liveDim})
		if err != nil {
			return err
		}
	}
	runners := map[string]func(experiments.Config) error{
		"table1":       runTable1,
		"fig1":         runFig1,
		"table2":       runTable2,
		"fig6":         runFig6,
		"fig7":         runFig7,
		"fig8":         runFig8,
		"fig9":         runFig9,
		"table3":       runTable3,
		"fig10":        runFig10,
		"partitioners": runPartitioners,
		"skew":         runSkew,
		"mapping":      runMapping,
		"stencil":      runStencil,
		"dynamic":      runDynamic,
		"live":         func(c experiments.Config) error { return runLive(c, cfg, reg) },
		"netstat":      func(experiments.Config) error { return runNetstat(cfg) },
		"hier":         func(experiments.Config) error { return runHier(cfg) },
	}
	order := []string{"table1", "fig1", "table2", "fig6", "fig7", "fig8", "fig9", "table3", "fig10",
		"partitioners", "skew", "mapping", "stencil", "dynamic"}
	if cfg.debugAddr != "" && exp != "netstat" {
		// Without a registry the endpoint still serves pprof and expvar.
		// netstat serves its own fleet-level endpoint after the merge.
		ds, err := reg.ServeDebug(cfg.debugAddr)
		if err != nil {
			return err
		}
		defer ds.Close()
		fmt.Printf("debug endpoint: http://%s/debug/\n", ds.Addr)
	}
	if exp != "all" {
		r, ok := runners[exp]
		if !ok {
			return fmt.Errorf("unknown experiment %q", exp)
		}
		return timed(exp, cfg.Config, r)
	}
	for _, name := range order {
		if err := timed(name, cfg.Config, runners[name]); err != nil {
			return err
		}
	}
	return nil
}

func timed(name string, cfg experiments.Config, f func(experiments.Config) error) error {
	start := time.Now()
	if err := f(cfg); err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	fmt.Printf("\n[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	return nil
}

func runTable1(cfg experiments.Config) error {
	rows, err := experiments.Table1(cfg)
	if err != nil {
		return err
	}
	experiments.RenderTable1(os.Stdout, rows)
	return nil
}

func runFig1(cfg experiments.Config) error {
	series, err := experiments.Figure1(cfg)
	if err != nil {
		return err
	}
	experiments.RenderFigure1(os.Stdout, series)
	return nil
}

func runTable2(cfg experiments.Config) error {
	blocks, err := experiments.Table2(cfg)
	if err != nil {
		return err
	}
	experiments.RenderTable2(os.Stdout, blocks)
	return nil
}

func runFig6(cfg experiments.Config) error {
	rows, err := experiments.Figure6(cfg)
	if err != nil {
		return err
	}
	experiments.RenderFigure6(os.Stdout, rows)
	return nil
}

func runFig7(cfg experiments.Config) error {
	panels, err := experiments.Figure7(cfg)
	if err != nil {
		return err
	}
	experiments.RenderFigure7(os.Stdout, panels)
	return nil
}

func runFig8(cfg experiments.Config) error {
	series, err := experiments.Figure8(cfg)
	if err != nil {
		return err
	}
	experiments.RenderFigure8(os.Stdout, series)
	return nil
}

func runFig9(cfg experiments.Config) error {
	bars, err := experiments.Figure9(cfg)
	if err != nil {
		return err
	}
	experiments.RenderFigure9(os.Stdout, bars)
	return nil
}

func runTable3(cfg experiments.Config) error {
	blocks, err := experiments.Table3(cfg)
	if err != nil {
		return err
	}
	experiments.RenderTable3(os.Stdout, blocks)
	return nil
}

func runFig10(cfg experiments.Config) error {
	rows, err := experiments.Figure10(cfg)
	if err != nil {
		return err
	}
	experiments.RenderFigure10(os.Stdout, rows)
	return nil
}

func runPartitioners(cfg experiments.Config) error {
	rows, err := experiments.PartitionerAblation(cfg, "GaAsH6", 256)
	if err != nil {
		return err
	}
	experiments.RenderPartitionerAblation(os.Stdout, "GaAsH6", 256, rows)
	return nil
}

func runSkew(cfg experiments.Config) error {
	rows, err := experiments.SkewAblation(cfg, "gupta2", 512, 4)
	if err != nil {
		return err
	}
	experiments.RenderSkewAblation(os.Stdout, "gupta2", 512, 4, rows)
	return nil
}

func runMapping(cfg experiments.Config) error {
	rows, err := experiments.MappingAblation(cfg, "coAuthorsDBLP", 256, 4)
	if err != nil {
		return err
	}
	experiments.RenderMappingAblation(os.Stdout, "coAuthorsDBLP", 256, 4, rows)
	return nil
}

func runStencil(cfg experiments.Config) error {
	rows, err := experiments.StencilControl(256, 128)
	if err != nil {
		return err
	}
	experiments.RenderStencilControl(os.Stdout, 256, rows)
	return nil
}

func runDynamic(cfg experiments.Config) error {
	rows, err := experiments.DynamicSweep(cfg)
	if err != nil {
		return err
	}
	experiments.RenderDynamicSweep(os.Stdout, rows)
	return nil
}
