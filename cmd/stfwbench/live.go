package main

import (
	"fmt"
	"math/rand"
	"os"

	"stfw/internal/core"
	"stfw/internal/experiments"
	"stfw/internal/partition"
	"stfw/internal/runtime"
	"stfw/internal/sparse"
	"stfw/internal/spmv"
	"stfw/internal/telemetry"
	"stfw/internal/transport/chanpt"
	"stfw/internal/transport/hier"
	"stfw/internal/transport/tcpnet"
	"stfw/internal/transport/udpnet"
	"stfw/internal/vpt"
)

// The live experiment's fixed world: the paper's K=64 configuration over a
// 3-dimensional balanced topology (T3, 4x4x4).
const (
	liveK      = 64
	liveDim    = 3
	liveMatrix = "gupta2"
	liveIters  = 4 // learning iteration + 3 steady-state
)

// runLive executes a real K=64 STFW SpMV in-process with the telemetry
// layer attached and reports the observed (not modeled) behavior: frame
// and forward counters, frame-size and stage-latency histograms, and a
// Perfetto trace when -trace-out is set. The first iteration is the STFW
// learning run (the stage machine's ordered discipline, recording the
// schedule); the remaining iterations replay the learned program through
// the compiled lowering with pipelined receives (DESIGN.md §8), so the
// trace shows both engine disciplines side by side.
func runLive(c experiments.Config, cfg benchConfig, reg *telemetry.Registry) error {
	if cfg.procs > 1 {
		// Multi-process loopback mode replaces the in-process SpMV run
		// with a wire-only learned-replay collective (see udp.go).
		return runUDPProcs(cfg)
	}
	a, err := sparse.CatalogMatrix(liveMatrix, c.Scale)
	if err != nil {
		return err
	}
	st := sparse.ComputeStats(a)
	fmt.Printf("live STFW run: %s scale %d (%dx%d, %d nnz), K=%d\n",
		liveMatrix, c.Scale, st.Rows, st.Cols, st.NNZ, liveK)

	part, err := partition.Greedy(a, liveK, partition.DefaultGreedy())
	if err != nil {
		return err
	}
	pat, err := spmv.BuildPattern(a, part)
	if err != nil {
		return err
	}
	tp, err := vpt.NewBalanced(liveK, liveDim)
	if err != nil {
		return err
	}
	fmt.Printf("topology: %s, message bound %d (BL bound %d)\n",
		tp, core.MaxMessageBound(tp), liveK-1)

	rng := rand.New(rand.NewSource(42))
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = rng.NormFloat64()
	}

	var comms []runtime.Comm
	switch cfg.transport {
	case "", "chan":
		w, err := chanpt.NewWorld(liveK, liveK)
		if err != nil {
			return err
		}
		comms = w.Comms()
	case "tcp":
		w, err := tcpnet.NewWorld(liveK)
		if err != nil {
			return err
		}
		defer w.Close()
		comms = w.Comms()
	case "udp":
		w, err := udpnet.NewWorld(liveK)
		if err != nil {
			return err
		}
		defer func() {
			w.Close()
			st := w.Stats()
			fmt.Printf("udpnet: %d data dgrams in %d batches, %d resends, %d stage acks, %d acks suppressed\n",
				st.DataSent, st.Batches, st.Resends, st.StageAcks, st.AcksSuppressed)
		}()
		comms = w.Comms()
	case "hier":
		// The hierarchical composite on a simulated two-node split of the
		// world: intra-node pairs over chanpt, inter-node pairs (and the
		// world barrier) over udpnet.
		inner, err := chanpt.NewWorld(liveK, liveK)
		if err != nil {
			return err
		}
		outer, err := udpnet.NewWorld(liveK)
		if err != nil {
			return err
		}
		defer func() {
			st := outer.Stats()
			outer.Close()
			inner.Close()
			fmt.Printf("hier outer udpnet: %d data dgrams in %d batches, %d resends, %d stage acks, %d acks suppressed\n",
				st.DataSent, st.Batches, st.Resends, st.StageAcks, st.AcksSuppressed)
		}()
		half := liveK / 2
		hw, err := hier.New(hier.Config{
			Inner:  inner.Comms(),
			Outer:  outer.Comms(),
			NodeOf: func(r int) int { return r / half },
		})
		if err != nil {
			return err
		}
		fmt.Printf("hier transport: 2-node split (%d ranks/node), intra-node chanpt, inter-node udpnet\n", half)
		comms = hw.Comms()
	default:
		return fmt.Errorf("unknown transport %q (want chan, tcp, udp, or hier)", cfg.transport)
	}
	stages := tp.N()
	reg.WrapComms(comms, func(tag int) (int, bool) {
		return core.TagStage(tag, stages)
	})
	opt := spmv.Options{Method: spmv.STFW, Topo: tp, Telemetry: reg}
	err = runtime.Run(comms, func(cm runtime.Comm) error {
		sess, err := spmv.NewSession(cm, a, part, pat, opt)
		if err != nil {
			return err
		}
		for it := 0; it < liveIters; it++ {
			if _, err := sess.Multiply(x); err != nil {
				return fmt.Errorf("iteration %d rank %d: %w", it, cm.Rank(), err)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	s := reg.Snapshot()
	tot := s.Totals()
	fmt.Printf("\nobserved over %d iterations:\n", liveIters)
	fmt.Printf("  frames sent      %8d (%d bytes)\n", tot.Sends, tot.SendBytes)
	fmt.Printf("  frames received  %8d (%d bytes)\n", tot.Recvs, tot.RecvBytes)
	fmt.Printf("  subs forwarded   %8d (%d bytes)\n", tot.Forwards, tot.FwdBytes)
	reg.WriteHistograms(os.Stdout)
	if cfg.traceOut != "" {
		if err := reg.WriteTraceFile(cfg.traceOut); err != nil {
			return err
		}
		fmt.Printf("trace written to %s (open in ui.perfetto.dev)\n", cfg.traceOut)
	}
	return nil
}
