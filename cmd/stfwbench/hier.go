package main

import (
	"fmt"
	"math/rand"
	"os"
	"sync/atomic"
	"time"

	"stfw/internal/core"
	"stfw/internal/experiments"
	"stfw/internal/runtime"
	"stfw/internal/transport/chanpt"
	"stfw/internal/transport/hier"
	"stfw/internal/transport/udpnet"
	"stfw/internal/vpt"
)

// The hier experiment confronts the dimension-assignment planner's model
// with a measurement. First the planner table: the default balanced
// assignment next to the planned one for the live instance on the XC40
// profile (32 ranks/node — K=64 spans exactly two nodes, the same split the
// measured run simulates). Then the measurement: the planner's node-aligned
// T2(32,2) learned replay executed twice on loopback, once with every frame
// over udpnet and once through the hierarchical composite that keeps
// dimension 0 on the in-process transport. The absolute numbers live in
// different worlds (the model prices a Dragonfly, the measurement a
// loopback host), so the comparison row at the bottom lines up the two
// *ratios*: what the model claims the hierarchy is worth against what the
// wire measured.
const (
	hierIters   = 100
	hierDests   = 8
	hierPayload = 256
)

// hierReplayPayloads builds the per-rank payload maps of the measured
// replay: hierDests random destinations, hierPayload bytes each.
func hierReplayPayloads(K int) []map[int][]byte {
	rng := rand.New(rand.NewSource(int64(K) * 11))
	out := make([]map[int][]byte, K)
	for src := 0; src < K; src++ {
		m := map[int][]byte{}
		for len(m) < hierDests {
			dst := rng.Intn(K)
			if dst == src {
				continue
			}
			p := make([]byte, hierPayload)
			for i := range p {
				p[i] = byte(src + i)
			}
			m[dst] = p
		}
		out[src] = m
	}
	return out
}

// measureReplayFPS learns the schedule once per rank and replays it iters
// times, returning world frames/sec over the whole run (learning included;
// it amortizes across the iterations).
func measureReplayFPS(comms []runtime.Comm, tp *vpt.Topology, iters int) (float64, error) {
	payloads := hierReplayPayloads(len(comms))
	var framesPerIter atomic.Int64
	start := time.Now()
	err := runtime.Run(comms, func(c runtime.Comm) error {
		p, _, err := core.NewPersistent(c, tp, payloads[c.Rank()])
		if err != nil {
			return err
		}
		for _, st := range p.Traffic() {
			for _, pt := range st.Sends {
				framesPerIter.Add(int64(pt.Frames))
			}
		}
		for i := 0; i < iters; i++ {
			if _, err := p.Run(c, payloads[c.Rank()]); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	return float64(framesPerIter.Load()) * float64(iters) / time.Since(start).Seconds(), nil
}

func runHier(cfg benchConfig) error {
	rows, err := experiments.HierPlanTable(cfg.Config, liveMatrix, liveK, "xc40")
	if err != nil {
		return err
	}
	experiments.RenderHierPlanTable(os.Stdout, liveMatrix, liveK, "xc40", rows)

	tp, err := vpt.New(32, 2)
	if err != nil {
		return err
	}
	half := liveK / 2
	fmt.Printf("\nmeasured replay: %s, K=%d, %d iterations, %d dests x %dB per rank, 2-node split (%d ranks/node)\n",
		tp, liveK, hierIters, hierDests, hierPayload, half)

	udpW, err := udpnet.NewWorld(liveK)
	if err != nil {
		return err
	}
	udpFPS, err := measureReplayFPS(udpW.Comms(), tp, hierIters)
	udpW.Close()
	if err != nil {
		return err
	}

	inner, err := chanpt.NewWorld(liveK, liveK)
	if err != nil {
		return err
	}
	outer, err := udpnet.NewWorld(liveK)
	if err != nil {
		return err
	}
	hw, err := hier.New(hier.Config{
		Inner:  inner.Comms(),
		Outer:  outer.Comms(),
		NodeOf: func(r int) int { return r / half },
	})
	if err != nil {
		outer.Close()
		inner.Close()
		return err
	}
	hierFPS, err := measureReplayFPS(hw.Comms(), tp, hierIters)
	st := outer.Stats()
	outer.Close()
	inner.Close()
	if err != nil {
		return err
	}

	fmt.Printf("%-28s %14s\n", "transport", "frames/sec")
	fmt.Printf("%-28s %14.0f\n", "udpnet (all frames on wire)", udpFPS)
	fmt.Printf("%-28s %14.0f\n", "hier (chanpt + udpnet)", hierFPS)
	fmt.Printf("hier outer wire traffic: %d data dgrams in %d batches, %d resends\n",
		st.DataSent, st.Batches, st.Resends)
	measured := hierFPS / udpFPS
	modeled := 0.0
	if len(rows) == 2 && rows[1].CostSec > 0 {
		modeled = rows[0].CostSec / rows[1].CostSec
	}
	fmt.Printf("measured speedup %.2fx (hier over pure udpnet) vs modeled %.2fx (planned over base assignment)\n",
		measured, modeled)
	return nil
}
