package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"stfw/internal/experiments"
	"stfw/internal/telemetry"
)

func TestRunDispatch(t *testing.T) {
	cfg := benchConfig{Config: experiments.Config{Scale: 64}}
	if err := run(cfg, "nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
	// A fast experiment end-to-end through the CLI dispatcher.
	if err := run(cfg, "stencil"); err != nil {
		t.Errorf("stencil: %v", err)
	}
	if err := run(cfg, "fig1"); err != nil {
		t.Errorf("fig1: %v", err)
	}
}

// TestRunLiveUDP runs the live experiment over the udpnet transport
// in-process: the full K=64 SpMV collective crosses real loopback
// datagrams.
func TestRunLiveUDP(t *testing.T) {
	cfg := benchConfig{Config: experiments.Config{Scale: 64}, transport: "udp"}
	if err := run(cfg, "live"); err != nil {
		t.Fatal(err)
	}
	// An unknown transport must be rejected, not silently defaulted.
	cfg.transport = "carrier-pigeon"
	if err := run(cfg, "live"); err == nil {
		t.Error("unknown transport accepted")
	}
}

// TestUDPProcsLoopback end-to-ends the -procs multi-process mode: it
// builds the real binary, launches the parent, and checks every rank slice
// reports its transport stats. This is the only path that exercises
// fd-inheritance across exec (NewGroup from net.FilePacketConn).
func TestUDPProcsLoopback(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the stfwbench binary")
	}
	bin := filepath.Join(t.TempDir(), "stfwbench")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	out, err := exec.Command(bin, "-exp", "live", "-transport", "udp", "-procs", "2").CombinedOutput()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	for _, want := range []string{"ranks [0,32)", "ranks [32,64)", "data dgrams"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunLive executes the real K=64 STFW run with telemetry, trace export,
// debug endpoint, and profiles through the CLI path. This doubles as the
// acceptance check that a K=64 run produces a Perfetto-valid trace with one
// track per rank and per-stage slices matching the topology dimension.
func TestRunLive(t *testing.T) {
	dir := t.TempDir()
	cfg := benchConfig{
		Config:     experiments.Config{Scale: 64},
		traceOut:   filepath.Join(dir, "live.json"),
		debugAddr:  "127.0.0.1:0",
		cpuProfile: filepath.Join(dir, "cpu.pprof"),
		memProfile: filepath.Join(dir, "mem.pprof"),
	}
	if err := run(cfg, "live"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(cfg.traceOut)
	if err != nil {
		t.Fatal(err)
	}
	st, err := telemetry.ValidateTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Tracks) != liveK {
		t.Fatalf("trace has %d tracks, want one per rank (%d)", len(st.Tracks), liveK)
	}
	for r, tr := range st.Tracks {
		if !tr.Named {
			t.Fatalf("rank %d track unnamed", r)
		}
		if len(tr.Stages) != liveDim {
			t.Fatalf("rank %d saw %d distinct stages, want %d", r, len(tr.Stages), liveDim)
		}
	}
	for _, p := range []string{cfg.cpuProfile, cfg.memProfile} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Fatalf("profile %s missing or empty (err=%v)", p, err)
		}
	}
}
