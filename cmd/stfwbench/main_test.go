package main

import (
	"testing"

	"stfw/internal/experiments"
)

func TestRunDispatch(t *testing.T) {
	cfg := experiments.Config{Scale: 64}
	if err := run(cfg, "nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
	// A fast experiment end-to-end through the CLI dispatcher.
	if err := run(cfg, "stencil"); err != nil {
		t.Errorf("stencil: %v", err)
	}
	if err := run(cfg, "fig1"); err != nil {
		t.Errorf("fig1: %v", err)
	}
}
