package main

import (
	"fmt"
	"math/rand"

	"stfw/internal/core"
	"stfw/internal/runtime"
	"stfw/internal/transport/chanpt"
	"stfw/internal/vpt"
)

// runVerify (-verify) sweeps the whole-world schedule verifier
// (core.VerifyWorld) over the conformance topology set: for every shape it
// builds a seeded irregular traffic pattern and checks all four schedule
// front-ends — dynamic, plan-driven (with submessage conservation against
// the plan), learned (a real in-process learning exchange over chanpt), and
// the direct baseline. It prints one line per topology and returns an error
// if any world fails, making it a command-line regression gate for schedule
// construction.
func runVerify() error {
	tps, err := verifyTopologies()
	if err != nil {
		return err
	}
	failed := 0
	for _, tp := range tps {
		K := tp.Size()
		sends := verifySendSets(int64(K), K)
		if err := verifyOne(tp, sends); err != nil {
			failed++
			fmt.Printf("FAIL K=%-3d dims=%v\n      %v\n", K, tp.Dims(), err)
			continue
		}
		fmt.Printf("ok   K=%-3d dims=%v  dynamic+plan+learned+direct\n", K, tp.Dims())
	}
	if failed > 0 {
		return fmt.Errorf("verify: %d of %d topologies failed", failed, len(tps))
	}
	fmt.Printf("verify: all %d topologies consistent across all schedule front-ends\n", len(tps))
	return nil
}

func verifyTopologies() ([]*vpt.Topology, error) {
	var tps []*vpt.Topology
	for _, K := range []int{8, 16, 64} {
		for n := 1; n <= vpt.MaxDim(K); n++ {
			tp, err := vpt.NewBalanced(K, n)
			if err != nil {
				return nil, err
			}
			tps = append(tps, tp)
		}
	}
	for _, c := range []struct{ K, n int }{{12, 2}, {18, 2}, {60, 3}} {
		tp, err := vpt.NewFactored(c.K, c.n)
		if err != nil {
			return nil, err
		}
		tps = append(tps, tp)
	}
	return tps, nil
}

// verifySendSets mirrors the conformance suite's seeded pattern: a couple
// of heavy hot-spot ranks plus light random traffic.
func verifySendSets(seed int64, K int) *core.SendSets {
	rng := rand.New(rand.NewSource(seed))
	s := core.NewSendSets(K)
	for h := 0; h < 2; h++ {
		src := rng.Intn(K)
		for dst := 0; dst < K; dst++ {
			if dst != src && rng.Intn(4) != 0 {
				s.Add(src, dst, 1)
			}
		}
	}
	for src := 0; src < K; src++ {
		for l := 0; l < 2; l++ {
			if dst := rng.Intn(K); dst != src {
				s.Add(src, dst, 1)
			}
		}
	}
	if err := s.Normalize(); err != nil {
		panic(err) // seeded generator over valid ranks cannot produce bad sets
	}
	return s
}

func verifyOne(tp *vpt.Topology, sends *core.SendSets) error {
	if err := core.VerifyWorld(core.WorldSchedules(tp)); err != nil {
		return fmt.Errorf("dynamic front-end: %w", err)
	}

	plan, err := core.BuildPlan(tp, sends)
	if err != nil {
		return err
	}
	if err := core.VerifyWorldAgainstPlan(plan.WorldSchedules(), plan); err != nil {
		return fmt.Errorf("plan front-end: %w", err)
	}

	learned, err := learnedSchedules(tp, sends)
	if err != nil {
		return err
	}
	if err := core.VerifyWorldAgainstPlan(learned, plan); err != nil {
		return fmt.Errorf("learned front-end: %w", err)
	}

	dplan, err := core.BuildDirectPlan(sends)
	if err != nil {
		return err
	}
	if err := core.VerifyWorldAgainstPlan(core.DirectWorldSchedules(sends), dplan); err != nil {
		return fmt.Errorf("direct front-end: %w", err)
	}
	return nil
}

// learnedSchedules runs a real learning exchange in-process and returns
// every rank's learned StageSchedule.
func learnedSchedules(tp *vpt.Topology, sends *core.SendSets) ([]*core.StageSchedule, error) {
	K := tp.Size()
	w, err := chanpt.NewWorld(K, 2)
	if err != nil {
		return nil, err
	}
	scheds := make([]*core.StageSchedule, K)
	err = runtime.Run(w.Comms(), func(c runtime.Comm) error {
		me := c.Rank()
		payloads := map[int][]byte{}
		for _, pr := range sends.Sets[me] {
			payloads[pr.Dst] = make([]byte, 8*pr.Words)
		}
		p, _, err := core.NewPersistent(c, tp, payloads)
		if err != nil {
			return err
		}
		scheds[me] = p.Schedule()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return scheds, nil
}
