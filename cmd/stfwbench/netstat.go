package main

// The netstat experiment: execute the K=64 learned-replay exchange over a
// real transport with wire-level telemetry attached, then print what the
// network actually did — per-rank link stats (RTT, resends, SACK repairs,
// ack suppression), the per-stage straggler table — and how far the netsim
// cost model, calibrated from the measured ack RTTs, diverges from the
// measured per-stage wall-clock. With -procs P the run spans P OS
// processes; each child ships its registry snapshot back over an inherited
// pipe and the parent merges them into one fleet report (and, with
// -debug-addr, serves the merged view from a single /debug/fleet
// endpoint).

import (
	"fmt"
	"os"
	"os/signal"

	"stfw/internal/experiments"
	"stfw/internal/runtime"
	"stfw/internal/telemetry"
	"stfw/internal/transport/chanpt"
	"stfw/internal/transport/tcpnet"
	"stfw/internal/transport/udpnet"
)

// runNetstat dispatches between the in-process run and the multi-process
// fleet run.
func runNetstat(cfg benchConfig) error {
	ncfg := experiments.DefaultNetstat()
	if cfg.procs > 1 {
		return runNetstatProcs(cfg, ncfg)
	}
	reg, err := telemetry.New(telemetry.Config{Ranks: ncfg.K, Stages: ncfg.Dim})
	if err != nil {
		return err
	}
	var comms []runtime.Comm
	switch cfg.transport {
	case "", "chan":
		w, err := chanpt.NewWorld(ncfg.K, ncfg.K)
		if err != nil {
			return err
		}
		comms = w.Comms()
	case "tcp":
		w, err := tcpnet.NewWorld(ncfg.K)
		if err != nil {
			return err
		}
		defer w.Close()
		comms = w.Comms()
	case "udp":
		w, err := udpnet.NewWorld(ncfg.K)
		if err != nil {
			return err
		}
		defer w.Close()
		comms = w.Comms()
	default:
		return fmt.Errorf("unknown transport %q (want chan, tcp, or udp)", cfg.transport)
	}
	fmt.Printf("netstat: in-process %s run\n", transportName(cfg.transport))
	if err := experiments.NetstatRun(ncfg, reg, comms); err != nil {
		return err
	}
	return netstatFinish(cfg, ncfg, reg.Snapshot())
}

func transportName(t string) string {
	if t == "" {
		return "chan"
	}
	return t
}

// runNetstatProcs is the fleet path: the udp launcher in netstat mode
// returns one decoded snapshot per child, merged here onto the world
// timeline.
func runNetstatProcs(cfg benchConfig, ncfg experiments.NetstatConfig) error {
	if cfg.transport != "udp" {
		return fmt.Errorf("-exp netstat -procs %d requires -transport udp", cfg.procs)
	}
	if cfg.procs < 2 || ncfg.K%cfg.procs != 0 {
		return fmt.Errorf("-procs must be a divisor of %d greater than 1, got %d", ncfg.K, cfg.procs)
	}
	fmt.Printf("netstat: K=%d over %d processes (%d ranks each)\n", ncfg.K, cfg.procs, ncfg.K/cfg.procs)
	snaps, err := launchUDPProcs(cfg.procs, "netstat")
	if err != nil {
		return err
	}
	merged, err := telemetry.MergeSnapshots(snaps)
	if err != nil {
		return err
	}
	return netstatFinish(cfg, ncfg, merged)
}

// netstatFinish builds and prints the measured-vs-model report from a
// (possibly fleet-merged) snapshot, honoring -trace-out and -debug-addr.
func netstatFinish(cfg benchConfig, ncfg experiments.NetstatConfig, snap telemetry.Snapshot) error {
	rep, err := experiments.BuildNetstatReport(ncfg, snap)
	if err != nil {
		return err
	}
	experiments.RenderNetstat(os.Stdout, rep)
	if cfg.traceOut != "" {
		f, err := os.Create(cfg.traceOut)
		if err != nil {
			return err
		}
		if err := telemetry.WriteSnapshotTrace(f, snap); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\nmerged trace written to %s (open in ui.perfetto.dev)\n", cfg.traceOut)
	}
	if cfg.debugAddr != "" {
		ds, err := telemetry.ServeFleetDebug(cfg.debugAddr, snap)
		if err != nil {
			return err
		}
		defer ds.Close()
		fmt.Printf("\nfleet debug endpoint: http://%s/debug/fleet (interrupt to exit)\n", ds.Addr)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
	}
	return nil
}
