package main

// Multi-process loopback mode for the udpnet transport: -transport udp
// -procs P splits the K=64 live world across P OS processes, each owning a
// contiguous slice of ranks behind its own sockets. The parent binds every
// rank's UDP socket up front (so no rendezvous protocol is needed),
// re-execs itself P times passing each child its slice via inherited file
// descriptors, and waits. The children form one world purely over the
// wire — sends, credits, acks, and the barrier all cross process
// boundaries — and run a learned-replay throughput loop, each reporting
// its observed transport stats.
//
// The -exp netstat variant runs the same launcher with one extra inherited
// descriptor per child: a pipe on which the child, after its instrumented
// run, writes its telemetry registry's encoded snapshot (see
// telemetry.EncodeSnapshot). The parent decodes and merges the snapshots
// into one fleet view (see netstat.go).

import (
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"time"

	"stfw/internal/core"
	"stfw/internal/experiments"
	"stfw/internal/runtime"
	"stfw/internal/telemetry"
	"stfw/internal/transport/udpnet"
	"stfw/internal/vpt"
)

const (
	udpChildEnv  = "STFW_UDP_CHILD"
	udpExpEnv    = "STFW_UDP_EXP" // "" = replay loop, "netstat" = instrumented run + snapshot pipe
	udpProcDim   = 2              // dims [8,8] at K=64: the wide-radix shape
	udpProcIters = 200
	udpProcDests = 8
	udpProcBytes = 256
)

// udpProcPayloads is the deterministic per-rank payload pattern every
// process derives independently (no cross-process coordination needed). It
// is the netstat experiment's pattern, so the -exp netstat fleet run and
// the plain -exp live -procs loop exercise identical schedules.
func udpProcPayloads(K, rank int) map[int][]byte {
	cfg := experiments.DefaultNetstat()
	cfg.K, cfg.Dests, cfg.Bytes = K, udpProcDests, udpProcBytes
	return experiments.NetstatPayloads(cfg, rank)
}

// runUDPProcs is the parent of the plain replay mode: bind all K sockets,
// fork P children each inheriting its slice, wait for the collective to
// finish.
func runUDPProcs(cfg benchConfig) error {
	K, procs := liveK, cfg.procs
	if cfg.transport != "udp" {
		return fmt.Errorf("-procs %d requires -transport udp", procs)
	}
	if procs < 2 || K%procs != 0 {
		return fmt.Errorf("-procs must be a divisor of %d greater than 1, got %d", K, procs)
	}
	fmt.Printf("udp multi-process loopback: K=%d over %d processes (%d ranks each), %d replay iterations\n",
		K, procs, K/procs, udpProcIters)
	_, err := launchUDPProcs(procs, "")
	return err
}

// launchUDPProcs binds the world's sockets, re-execs P children each
// inheriting its rank slice, and waits. In "netstat" mode every child also
// inherits the write end of a pipe (at fd 3+count, after its sockets) and
// ships its encoded telemetry snapshot back; the decoded snapshots are
// returned in child order. In plain mode the returned slice is nil.
func launchUDPProcs(procs int, exp string) ([]telemetry.Snapshot, error) {
	K := liveK
	conns, addrs, err := udpnet.Bind(K)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	per := K / procs
	var cmds []*exec.Cmd
	var readers []*os.File
	for p := 0; p < procs; p++ {
		lo := p * per
		files := make([]*os.File, per)
		for i := range files {
			f, err := conns[lo+i].File()
			if err != nil {
				return nil, err
			}
			files[i] = f
		}
		if exp == "netstat" {
			r, w, err := os.Pipe()
			if err != nil {
				return nil, err
			}
			files = append(files, w)
			readers = append(readers, r)
		}
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			udpChildEnv+"=1",
			udpExpEnv+"="+exp,
			fmt.Sprintf("STFW_UDP_SIZE=%d", K),
			fmt.Sprintf("STFW_UDP_FIRST=%d", lo),
			fmt.Sprintf("STFW_UDP_COUNT=%d", per),
			"STFW_UDP_ADDRS="+strings.Join(addrs, ","))
		cmd.ExtraFiles = files
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("start child %d: %w", p, err)
		}
		// The child owns dups of the fds now; drop the parent's copies.
		for _, f := range files {
			f.Close()
		}
		cmds = append(cmds, cmd)
	}
	// Snapshots can exceed the pipe buffer, so drain concurrently with the
	// children's execution — a child blocked on its final write would
	// deadlock against a parent blocked in Wait.
	blobs := make([][]byte, len(readers))
	readErrs := make([]error, len(readers))
	var wg sync.WaitGroup
	for i, r := range readers {
		wg.Add(1)
		go func(i int, r *os.File) {
			defer wg.Done()
			defer r.Close()
			blobs[i], readErrs[i] = io.ReadAll(r)
		}(i, r)
	}
	var firstErr error
	for p, cmd := range cmds {
		if err := cmd.Wait(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("child %d: %w", p, err)
		}
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if exp != "netstat" {
		return nil, nil
	}
	snaps := make([]telemetry.Snapshot, len(blobs))
	for i, blob := range blobs {
		if readErrs[i] != nil {
			return nil, fmt.Errorf("child %d snapshot: %w", i, readErrs[i])
		}
		s, err := telemetry.DecodeSnapshot(blob)
		if err != nil {
			return nil, fmt.Errorf("child %d snapshot: %w", i, err)
		}
		snaps[i] = s
	}
	return snaps, nil
}

// runUDPChild is one slice of the multi-process world: rebuild the local
// sockets from inherited descriptors, join the world via NewGroup, and run
// the mode the parent requested.
func runUDPChild() error {
	size, err := strconv.Atoi(os.Getenv("STFW_UDP_SIZE"))
	if err != nil {
		return fmt.Errorf("STFW_UDP_SIZE: %w", err)
	}
	first, err := strconv.Atoi(os.Getenv("STFW_UDP_FIRST"))
	if err != nil {
		return fmt.Errorf("STFW_UDP_FIRST: %w", err)
	}
	count, err := strconv.Atoi(os.Getenv("STFW_UDP_COUNT"))
	if err != nil {
		return fmt.Errorf("STFW_UDP_COUNT: %w", err)
	}
	addrs := strings.Split(os.Getenv("STFW_UDP_ADDRS"), ",")
	if len(addrs) != size {
		return fmt.Errorf("got %d addrs for world size %d", len(addrs), size)
	}
	local := make([]int, count)
	conns := make([]*net.UDPConn, count)
	for i := 0; i < count; i++ {
		local[i] = first + i
		f := os.NewFile(uintptr(3+i), fmt.Sprintf("udp-rank-%d", first+i))
		pc, err := net.FilePacketConn(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("rank %d socket: %w", first+i, err)
		}
		uc, ok := pc.(*net.UDPConn)
		if !ok {
			return fmt.Errorf("rank %d: inherited fd is %T, not UDP", first+i, pc)
		}
		conns[i] = uc
	}
	w, err := udpnet.NewGroup(udpnet.GroupConfig{Size: size, Local: local, Conns: conns, Addrs: addrs})
	if err != nil {
		return err
	}
	defer w.Close()
	if os.Getenv(udpExpEnv) == "netstat" {
		return runNetstatChild(w, size, count)
	}
	tp, err := vpt.NewBalanced(size, udpProcDim)
	if err != nil {
		return err
	}
	start := time.Now()
	err = runtime.Run(w.Comms(), func(c runtime.Comm) error {
		payloads := udpProcPayloads(size, c.Rank())
		p, _, err := core.NewPersistent(c, tp, payloads)
		if err != nil {
			return err
		}
		for i := 0; i < udpProcIters; i++ {
			if _, err := p.Run(c, payloads); err != nil {
				return err
			}
		}
		return c.Barrier()
	})
	if err != nil {
		return err
	}
	st := w.Stats()
	fmt.Printf("ranks [%d,%d): %d data dgrams in %d batches, %d resends, %d stage acks, %d credit stalls, %v elapsed\n",
		first, first+count, st.DataSent, st.Batches, st.Resends, st.StageAcks, st.CreditStalls,
		time.Since(start).Round(time.Millisecond))
	return nil
}

// runNetstatChild runs the instrumented netstat collective over this
// process's rank slice and ships the registry snapshot to the parent over
// the inherited pipe (fd 3+count, right after the socket fds).
func runNetstatChild(w *udpnet.World, size, count int) error {
	ncfg := experiments.DefaultNetstat()
	ncfg.K = size
	reg, err := telemetry.New(telemetry.Config{Ranks: size, Stages: ncfg.Dim})
	if err != nil {
		return err
	}
	if err := experiments.NetstatRun(ncfg, reg, w.Comms()); err != nil {
		return err
	}
	out := os.NewFile(uintptr(3+count), "snapshot-pipe")
	if out == nil {
		return fmt.Errorf("netstat child: snapshot pipe fd %d missing", 3+count)
	}
	if _, err := out.Write(telemetry.EncodeSnapshot(reg.Snapshot())); err != nil {
		out.Close()
		return fmt.Errorf("netstat child: snapshot write: %w", err)
	}
	return out.Close()
}
