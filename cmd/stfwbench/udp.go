package main

// Multi-process loopback mode for the udpnet transport: -transport udp
// -procs P splits the K=64 live world across P OS processes, each owning a
// contiguous slice of ranks behind its own sockets. The parent binds every
// rank's UDP socket up front (so no rendezvous protocol is needed),
// re-execs itself P times passing each child its slice via inherited file
// descriptors, and waits. The children form one world purely over the
// wire — sends, credits, acks, and the barrier all cross process
// boundaries — and run a learned-replay throughput loop, each reporting
// its observed transport stats.

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"stfw/internal/core"
	"stfw/internal/runtime"
	"stfw/internal/transport/udpnet"
	"stfw/internal/vpt"
)

const (
	udpChildEnv  = "STFW_UDP_CHILD"
	udpProcDim   = 2 // dims [8,8] at K=64: the wide-radix shape
	udpProcIters = 200
	udpProcDests = 8
	udpProcBytes = 256
)

// udpProcPayloads is the deterministic per-rank payload pattern every
// process derives independently (no cross-process coordination needed).
func udpProcPayloads(K, rank int) map[int][]byte {
	rng := rand.New(rand.NewSource(int64(K)*11 + int64(rank)))
	m := map[int][]byte{}
	for len(m) < udpProcDests {
		dst := rng.Intn(K)
		if dst == rank {
			continue
		}
		m[dst] = bytes.Repeat([]byte{byte(rank)}, udpProcBytes)
	}
	return m
}

// runUDPProcs is the parent: bind all K sockets, fork P children each
// inheriting its slice, wait for the collective to finish.
func runUDPProcs(cfg benchConfig) error {
	K, procs := liveK, cfg.procs
	if cfg.transport != "udp" {
		return fmt.Errorf("-procs %d requires -transport udp", procs)
	}
	if procs < 2 || K%procs != 0 {
		return fmt.Errorf("-procs must be a divisor of %d greater than 1, got %d", K, procs)
	}
	conns, addrs, err := udpnet.Bind(K)
	if err != nil {
		return err
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	per := K / procs
	fmt.Printf("udp multi-process loopback: K=%d over %d processes (%d ranks each), %d replay iterations\n",
		K, procs, per, udpProcIters)
	var cmds []*exec.Cmd
	for p := 0; p < procs; p++ {
		lo := p * per
		files := make([]*os.File, per)
		for i := range files {
			f, err := conns[lo+i].File()
			if err != nil {
				return err
			}
			files[i] = f
		}
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			udpChildEnv+"=1",
			fmt.Sprintf("STFW_UDP_SIZE=%d", K),
			fmt.Sprintf("STFW_UDP_FIRST=%d", lo),
			fmt.Sprintf("STFW_UDP_COUNT=%d", per),
			"STFW_UDP_ADDRS="+strings.Join(addrs, ","))
		cmd.ExtraFiles = files
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("start child %d: %w", p, err)
		}
		// The child owns dups of the fds now; drop the parent's copies.
		for _, f := range files {
			f.Close()
		}
		cmds = append(cmds, cmd)
	}
	var firstErr error
	for p, cmd := range cmds {
		if err := cmd.Wait(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("child %d: %w", p, err)
		}
	}
	return firstErr
}

// runUDPChild is one slice of the multi-process world: rebuild the local
// sockets from inherited descriptors, join the world via NewGroup, and run
// the learned-replay loop.
func runUDPChild() error {
	size, err := strconv.Atoi(os.Getenv("STFW_UDP_SIZE"))
	if err != nil {
		return fmt.Errorf("STFW_UDP_SIZE: %w", err)
	}
	first, err := strconv.Atoi(os.Getenv("STFW_UDP_FIRST"))
	if err != nil {
		return fmt.Errorf("STFW_UDP_FIRST: %w", err)
	}
	count, err := strconv.Atoi(os.Getenv("STFW_UDP_COUNT"))
	if err != nil {
		return fmt.Errorf("STFW_UDP_COUNT: %w", err)
	}
	addrs := strings.Split(os.Getenv("STFW_UDP_ADDRS"), ",")
	if len(addrs) != size {
		return fmt.Errorf("got %d addrs for world size %d", len(addrs), size)
	}
	local := make([]int, count)
	conns := make([]*net.UDPConn, count)
	for i := 0; i < count; i++ {
		local[i] = first + i
		f := os.NewFile(uintptr(3+i), fmt.Sprintf("udp-rank-%d", first+i))
		pc, err := net.FilePacketConn(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("rank %d socket: %w", first+i, err)
		}
		uc, ok := pc.(*net.UDPConn)
		if !ok {
			return fmt.Errorf("rank %d: inherited fd is %T, not UDP", first+i, pc)
		}
		conns[i] = uc
	}
	w, err := udpnet.NewGroup(udpnet.GroupConfig{Size: size, Local: local, Conns: conns, Addrs: addrs})
	if err != nil {
		return err
	}
	defer w.Close()
	tp, err := vpt.NewBalanced(size, udpProcDim)
	if err != nil {
		return err
	}
	start := time.Now()
	err = runtime.Run(w.Comms(), func(c runtime.Comm) error {
		payloads := udpProcPayloads(size, c.Rank())
		p, _, err := core.NewPersistent(c, tp, payloads)
		if err != nil {
			return err
		}
		for i := 0; i < udpProcIters; i++ {
			if _, err := p.Run(c, payloads); err != nil {
				return err
			}
		}
		return c.Barrier()
	})
	if err != nil {
		return err
	}
	st := w.Stats()
	fmt.Printf("ranks [%d,%d): %d data dgrams in %d batches, %d resends, %d stage acks, %d credit stalls, %v elapsed\n",
		first, first+count, st.DataSent, st.Batches, st.Resends, st.StageAcks, st.CreditStalls,
		time.Since(start).Round(time.Millisecond))
	return nil
}
