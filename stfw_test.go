package stfw

import (
	"fmt"
	"math"
	"sort"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	const K = 16
	topo, err := BalancedTopology(K, 2)
	if err != nil {
		t.Fatal(err)
	}
	if topo.String() != "T2(4,4)" {
		t.Errorf("topology %v", topo)
	}
	if MessageBound(topo) != 6 {
		t.Errorf("bound %d", MessageBound(topo))
	}
	w, err := LocalWorld(K)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c Comm) error {
		// Rank 0 fans out to everyone (the hot-spot pattern).
		payloads := map[int][]byte{}
		if c.Rank() == 0 {
			for j := 1; j < K; j++ {
				payloads[j] = []byte{byte(j)}
			}
		}
		d, err := Exchange(c, topo, payloads)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if len(d.Subs) != 0 {
				return fmt.Errorf("rank 0 got %d deliveries", len(d.Subs))
			}
			return nil
		}
		if len(d.Subs) != 1 || d.Subs[0].Src != 0 || d.Subs[0].Data[0] != byte(c.Rank()) {
			return fmt.Errorf("rank %d: bad delivery %+v", c.Rank(), d.Subs)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFacadePlanningPipeline(t *testing.T) {
	const K = 64
	s := NewSendSets(K)
	for j := 1; j < K; j++ {
		s.Add(0, j, 4) // hot sender
	}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	direct, err := BuildDirectPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := BalancedTopology(K, 3)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := BuildPlan(topo, s)
	if err != nil {
		t.Fatal(err)
	}
	dsum, err := Summarize("BL", direct, s)
	if err != nil {
		t.Fatal(err)
	}
	ssum, err := Summarize("STFW3", plan, s)
	if err != nil {
		t.Fatal(err)
	}
	if ssum.MMax >= dsum.MMax {
		t.Errorf("STFW mmax %.0f not below BL %.0f", ssum.MMax, dsum.MMax)
	}
	m, err := BlueGeneQ(K)
	if err != nil {
		t.Fatal(err)
	}
	tBL, err := CommTime(m, direct)
	if err != nil {
		t.Fatal(err)
	}
	tST, err := CommTime(m, plan)
	if err != nil {
		t.Fatal(err)
	}
	if tST >= tBL {
		t.Errorf("STFW time %.2g not below BL %.2g on hot-spot", tST, tBL)
	}
}

func TestFacadeDiscoverSources(t *testing.T) {
	const K = 8
	w, err := LocalWorld(K)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c Comm) error {
		dests := []int{(c.Rank() + 1) % K}
		srcs, err := DiscoverSources(c, dests)
		if err != nil {
			return err
		}
		sort.Ints(srcs)
		want := (c.Rank() + K - 1) % K
		if len(srcs) != 1 || srcs[0] != want {
			return fmt.Errorf("rank %d: sources %v, want [%d]", c.Rank(), srcs, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFacadeDirectExchange(t *testing.T) {
	const K = 4
	w, err := LocalWorld(K)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c Comm) error {
		payloads := map[int][]byte{(c.Rank() + 2) % K: {9}}
		d, err := ExchangeDirect(c, payloads, []int{(c.Rank() + 2) % K})
		if err != nil {
			return err
		}
		if len(d.Subs) != 1 || d.Subs[0].Data[0] != 9 {
			return fmt.Errorf("rank %d: %+v", c.Rank(), d.Subs)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFacadeTCPWorld(t *testing.T) {
	const K = 4
	topo, err := BalancedTopology(K, 2)
	if err != nil {
		t.Fatal(err)
	}
	w, err := TCPWorld(K)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c Comm) error {
		d, err := Exchange(c, topo, map[int][]byte{(c.Rank() + 1) % K: {1}})
		if err != nil {
			return err
		}
		if len(d.Subs) != 1 {
			return fmt.Errorf("rank %d: %d deliveries", c.Rank(), len(d.Subs))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFacadeAnalysisValues(t *testing.T) {
	if got := VolumeBlowup(4, 4); math.Abs(got-3.01) > 0.01 {
		t.Errorf("VolumeBlowup(4,4) = %.3f", got)
	}
	if MaxTopologyDim(4096) != 12 {
		t.Errorf("MaxTopologyDim(4096) = %d", MaxTopologyDim(4096))
	}
	if _, err := NewTopology(3, 3); err != nil {
		t.Errorf("NewTopology: %v", err)
	}
	if _, err := DirectTopology(10); err != nil {
		t.Errorf("DirectTopology: %v", err)
	}
	machines := []func(int) (*Machine, error){BlueGeneQ, CrayXK7, CrayXC40}
	for _, mk := range machines {
		if _, err := mk(256); err != nil {
			t.Error(err)
		}
	}
}
