package stfw

// BenchmarkSessionIterationTelemetry gates the telemetry layer's overhead
// claim: the same steady-state compiled iteration as
// BenchmarkSessionIteration, measured with the collector disabled and with
// the full wiring enabled (Options.Telemetry + counting comm wrappers).
// The enabled variant must stay within a few percent of disabled and keep
// 0 allocs/op — the hooks are atomic adds, array stores, and two clock
// reads per phase.
//
// TestWriteTelemetryBenchJSON renders the off/on comparison into
// BENCH_telemetry.json when BENCH_TELEMETRY_JSON names an output path.

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"stfw/internal/spmv"
	"stfw/internal/telemetry"
)

// telemetryBenchCases: the K=64 rows of the iteration benchmark — large
// enough to exercise every stage of the 3-dimensional topology, small
// enough to measure precisely.
func telemetryBenchCases() []iterBenchCase {
	return []iterBenchCase{
		{matrix: "gupta2", scale: 8, K: 64, dim: 3},
		{matrix: "coAuthorsDBLP", scale: 8, K: 64, dim: 3},
	}
}

func telemetryBenchOptions(s *iterBenchSetup, enabled bool) spmv.Options {
	opt := spmv.Options{Method: spmv.STFW, Topo: s.topo}
	if enabled {
		opt.Telemetry = telemetry.MustNew(telemetry.Config{Ranks: s.topo.Size(), Stages: s.topo.N()})
	}
	return opt
}

func BenchmarkSessionIterationTelemetry(b *testing.B) {
	for _, c := range telemetryBenchCases() {
		s := getIterBenchSetup(b, c)
		for _, variant := range []string{"off", "on"} {
			b.Run(fmt.Sprintf("%s/K=%d/telemetry=%s", c.matrix, c.K, variant), func(b *testing.B) {
				benchSessionVariant(b, s, telemetryBenchOptions(s, variant == "on"), c.K)
			})
		}
	}
}

// telemetryBenchResult is one BENCH_telemetry.json entry.
type telemetryBenchResult struct {
	Matrix      string  `json:"matrix"`
	K           int     `json:"k"`
	Telemetry   string  `json:"telemetry"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type telemetryBenchReport struct {
	Note    string                 `json:"note"`
	Results []telemetryBenchResult `json:"results"`
	// OverheadRatio maps "matrix/K=n" to enabled ns_per_op divided by
	// disabled ns_per_op; the acceptance target is <= 1.05.
	OverheadRatio map[string]float64 `json:"overhead_ratio"`
}

// TestWriteTelemetryBenchJSON measures the off/on variants via
// testing.Benchmark and writes BENCH_telemetry.json. Enabled by setting
// BENCH_TELEMETRY_JSON to the output path. The 0-allocs invariant is
// enforced here (it is deterministic); the <=5% time overhead target is
// recorded in the artifact. Each variant is measured telemetryBenchReps
// times with off/on interleaved, keeping the per-variant minimum — the
// minimum is the estimator least sensitive to scheduler noise spikes on a
// shared machine, and interleaving decorrelates slow drift from the
// off/on comparison.
func TestWriteTelemetryBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_TELEMETRY_JSON")
	if path == "" {
		t.Skip("BENCH_TELEMETRY_JSON not set")
	}
	const telemetryBenchReps = 3
	report := telemetryBenchReport{
		Note:          "one op = all K ranks perform one steady-state compiled Session.Multiply over STFW on the chanpt transport; telemetry=on includes Options.Telemetry span hooks plus counting comm wrappers; ns_per_op is the minimum over interleaved repetitions; target overhead_ratio <= 1.05 with allocs_per_op 0 in both variants (on shared-CPU machines the ratio is noise-dominated: the residual on-cost is vDSO clock reads for the per-stage span timestamps)",
		OverheadRatio: map[string]float64{},
	}
	type pair struct{ off, on float64 }
	pairs := map[string]*pair{}
	for _, c := range telemetryBenchCases() {
		s := getIterBenchSetup(t, c)
		best := map[string]float64{}
		allocs := map[string]int64{}
		for rep := 0; rep < telemetryBenchReps; rep++ {
			for _, variant := range []string{"off", "on"} {
				opt := telemetryBenchOptions(s, variant == "on")
				r := testing.Benchmark(func(b *testing.B) {
					benchSessionVariant(b, s, opt, c.K)
				})
				nsOp := float64(r.T.Nanoseconds()) / float64(r.N)
				if r.AllocsPerOp() != 0 {
					t.Errorf("%s/K=%d telemetry=%s: %d allocs/op, want 0", c.matrix, c.K, variant, r.AllocsPerOp())
				}
				if prev, ok := best[variant]; !ok || nsOp < prev {
					best[variant] = nsOp
				}
				if r.AllocsPerOp() > allocs[variant] {
					allocs[variant] = r.AllocsPerOp()
				}
				t.Logf("%s/K=%d/telemetry=%s rep %d: %.0f ns/op, %d allocs/op (N=%d)", c.matrix, c.K, variant, rep, nsOp, r.AllocsPerOp(), r.N)
			}
		}
		key := fmt.Sprintf("%s/K=%d", c.matrix, c.K)
		pairs[key] = &pair{off: best["off"], on: best["on"]}
		for _, variant := range []string{"off", "on"} {
			report.Results = append(report.Results, telemetryBenchResult{
				Matrix:      c.matrix,
				K:           c.K,
				Telemetry:   variant,
				NsPerOp:     best[variant],
				AllocsPerOp: allocs[variant],
			})
		}
	}
	for key, p := range pairs {
		if p.off > 0 {
			report.OverheadRatio[key] = p.on / p.off
		}
	}
	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}
