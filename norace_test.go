//go:build !race

package stfw

const raceEnabled = false
