package stfw

// BenchmarkTransportThroughput compares the wire transports under the
// workload udpnet was built for: a K=64 wide-radix learned exchange
// replayed in steady state, small frames, every rank talking to several
// neighbors per stage. One op is the whole world completing one replay;
// the headline metric is frames/sec across the world (total transport
// sends per replay times replays per second).
//
// TestWriteUDPBenchJSON renders the measurement into BENCH_udp.json when
// BENCH_UDP_JSON names an output path, and gates the acceptance bar:
// udpnet's batched datagrams must beat tcpnet's per-frame stream writes by
// >=1.5x frames/sec on this shape.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sync/atomic"
	"testing"

	"stfw/internal/core"
	"stfw/internal/runtime"
	"stfw/internal/transport/chanpt"
	"stfw/internal/transport/hier"
	"stfw/internal/transport/tcpnet"
	"stfw/internal/transport/udpnet"
	"stfw/internal/vpt"
)

const (
	tptBenchK       = 64
	tptBenchDim     = 2 // dims [8,8]: 7 neighbors per stage, the wide-radix shape
	tptBenchDests   = 8
	tptBenchPayload = 256
)

// tptBenchPayloads builds the per-rank payload maps: each rank ships
// 256-byte frames to 8 pseudo-random destinations, the irregular small-
// message shape the paper regularizes.
func tptBenchPayloads(K int) []map[int][]byte {
	rng := rand.New(rand.NewSource(int64(K) * 11))
	out := make([]map[int][]byte, K)
	for src := 0; src < K; src++ {
		m := map[int][]byte{}
		for len(m) < tptBenchDests {
			dst := rng.Intn(K)
			if dst == src {
				continue
			}
			p := make([]byte, tptBenchPayload)
			for i := range p {
				p[i] = byte(src + i)
			}
			m[dst] = p
		}
		out[src] = m
	}
	return out
}

func tptBenchWorld(tb testing.TB, transport string, K int) ([]runtime.Comm, func()) {
	tb.Helper()
	switch transport {
	case "chanpt":
		w, err := chanpt.NewWorld(K, 4)
		if err != nil {
			tb.Fatal(err)
		}
		return w.Comms(), func() {}
	case "tcpnet":
		w, err := tcpnet.NewWorld(K)
		if err != nil {
			tb.Fatal(err)
		}
		return w.Comms(), w.Close
	case "udpnet":
		w, err := udpnet.NewWorld(K)
		if err != nil {
			tb.Fatal(err)
		}
		return w.Comms(), w.Close
	case "hier":
		// The hierarchical composite on a simulated two-node split: ranks
		// [0,K/2) on node 0, the rest on node 1, intra-node pairs over
		// chanpt, inter-node pairs over udpnet.
		inner, err := chanpt.NewWorld(K, 4)
		if err != nil {
			tb.Fatal(err)
		}
		outer, err := udpnet.NewWorld(K)
		if err != nil {
			tb.Fatal(err)
		}
		half := K / 2
		w, err := hier.New(hier.Config{
			Inner:  inner.Comms(),
			Outer:  outer.Comms(),
			NodeOf: func(r int) int { return r / half },
		})
		if err != nil {
			tb.Fatal(err)
		}
		return w.Comms(), func() {
			outer.Close()
			inner.Close()
		}
	default:
		tb.Fatalf("unknown transport %q", transport)
		return nil, nil
	}
}

// runTransportThroughput learns the schedule once per rank, replays it b.N
// times in lockstep, and reports world frames/sec. The learning exchange
// rides inside the timed region but amortizes to nothing as b.N grows.
func runTransportThroughput(b *testing.B, comms []runtime.Comm) float64 {
	b.Helper()
	tp, err := vpt.NewBalanced(tptBenchK, tptBenchDim)
	if err != nil {
		b.Fatal(err)
	}
	return runTransportThroughputOn(b, comms, tp)
}

// runTransportThroughputOn is runTransportThroughput over an explicit
// topology (the hier gate replays the planner's node-aligned factorization
// instead of the balanced default).
func runTransportThroughputOn(b *testing.B, comms []runtime.Comm, tp *vpt.Topology) float64 {
	b.Helper()
	payloads := tptBenchPayloads(tptBenchK)
	var framesPerOp atomic.Int64
	b.ResetTimer()
	err := runtime.Run(comms, func(c runtime.Comm) error {
		p, _, err := core.NewPersistent(c, tp, payloads[c.Rank()])
		if err != nil {
			return err
		}
		for _, st := range p.Traffic() {
			for _, pt := range st.Sends {
				framesPerOp.Add(int64(pt.Frames))
			}
		}
		for i := 0; i < b.N; i++ {
			if _, err := p.Run(c, payloads[c.Rank()]); err != nil {
				return err
			}
		}
		return nil
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	fps := float64(framesPerOp.Load()) * float64(b.N) / b.Elapsed().Seconds()
	b.ReportMetric(fps, "frames/sec")
	return fps
}

func BenchmarkTransportThroughput(b *testing.B) {
	for _, transport := range []string{"chanpt", "tcpnet", "udpnet", "hier"} {
		transport := transport
		b.Run(transport, func(b *testing.B) {
			comms, stop := tptBenchWorld(b, transport, tptBenchK)
			defer stop()
			runTransportThroughput(b, comms)
		})
	}
}

// udpBenchReport is the BENCH_udp.json schema.
type udpBenchReport struct {
	Note          string  `json:"note"`
	K             int     `json:"k"`
	Dims          []int   `json:"dims"`
	PayloadBytes  int     `json:"payload_bytes"`
	ChanFramesSec float64 `json:"chanpt_frames_per_sec"`
	TCPFramesSec  float64 `json:"tcpnet_frames_per_sec"`
	UDPFramesSec  float64 `json:"udpnet_frames_per_sec"`
	UDPOverTCP    float64 `json:"udp_over_tcp"`
}

// TestWriteUDPBenchJSON measures the three transports via
// testing.Benchmark, gates the >=1.5x udpnet-over-tcpnet acceptance bar,
// and writes the report to the path named by BENCH_UDP_JSON.
func TestWriteUDPBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_UDP_JSON")
	if path == "" {
		t.Skip("BENCH_UDP_JSON not set")
	}
	measure := func(transport string) float64 {
		var fps float64
		res := testing.Benchmark(func(b *testing.B) {
			comms, stop := tptBenchWorld(b, transport, tptBenchK)
			defer stop()
			fps = runTransportThroughput(b, comms)
		})
		t.Logf("%s: %v, %.0f frames/sec", transport, res, fps)
		return fps
	}
	report := udpBenchReport{
		Note: fmt.Sprintf("K=%d dims=[8 8] learned-replay throughput, %d dests x %dB per rank: "+
			"world frames/sec over chanpt (in-process reference), tcpnet (stream), udpnet (batched datagrams)",
			tptBenchK, tptBenchDests, tptBenchPayload),
		K:            tptBenchK,
		Dims:         []int{8, 8},
		PayloadBytes: tptBenchPayload,
	}
	report.ChanFramesSec = measure("chanpt")
	report.TCPFramesSec = measure("tcpnet")
	report.UDPFramesSec = measure("udpnet")
	report.UDPOverTCP = report.UDPFramesSec / report.TCPFramesSec
	if report.UDPOverTCP < 1.5 {
		t.Errorf("udpnet %.0f frames/sec is only %.2fx tcpnet's %.0f, want >=1.5x",
			report.UDPFramesSec, report.UDPOverTCP, report.TCPFramesSec)
	}
	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}
