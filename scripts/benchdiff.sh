#!/usr/bin/env sh
# benchdiff.sh BASE.txt HEAD.txt MAX_REGRESS_PCT [REQUIRED]
#
# Compares `go test -bench` outputs: for every benchmark present in both
# files, the mean ns/op over all -count repetitions is compared, and the
# script fails if any benchmark's head mean is more than MAX_REGRESS_PCT
# percent slower than its base mean. Benchmarks present in only one file
# (added or removed by the change) are reported and skipped.
#
# REQUIRED, when given, is a comma-separated list of benchmark names (as
# they appear in the output, minus the -GOMAXPROCS suffix) that must be
# present in HEAD; a missing one fails the gate. This catches a renamed or
# silently dropped benchmark that the present-in-both comparison would
# otherwise skip with only a REMOVED note.
#
# This is deliberately dependency-free (POSIX sh + awk). For a statistically
# richer report, run benchstat over the same two files; this script is only
# the red/green gate.
set -eu

if [ $# -lt 3 ] || [ $# -gt 4 ]; then
    echo "usage: $0 BASE.txt HEAD.txt MAX_REGRESS_PCT [REQUIRED]" >&2
    exit 2
fi

awk -v limit="$3" -v required="${4-}" '
FNR == 1 { file++ }
/^Benchmark/ && $3 == "ns/op" || /^Benchmark/ && $4 == "ns/op" {
    name = $1
    sub(/-[0-9]+$/, "", name)          # strip the -GOMAXPROCS suffix
    ns = ($3 == "ns/op") ? $2 : $3     # tolerate iteration-count column
    sum[file "|" name] += ns
    cnt[file "|" name]++
    names[name] = 1
}
END {
    fail = 0
    for (n in names) {
        if (!cnt[1 "|" n]) { printf "NEW      %s (head only, skipped)\n", n; continue }
        if (!cnt[2 "|" n]) { printf "REMOVED  %s (base only, skipped)\n", n; continue }
        base = sum[1 "|" n] / cnt[1 "|" n]
        head = sum[2 "|" n] / cnt[2 "|" n]
        delta = (head - base) / base * 100
        status = "ok      "
        if (delta > limit) { status = "REGRESS "; fail = 1 }
        printf "%s %-60s base %14.0f ns/op   head %14.0f ns/op   %+7.1f%%\n", status, n, base, head, delta
    }
    if (required != "") {
        n = split(required, req, ",")
        for (i = 1; i <= n; i++) {
            if (req[i] == "") continue
            if (!cnt[2 "|" req[i]]) {
                printf "MISSING  %s (required, absent from head)\n", req[i]
                fail = 1
            }
        }
    }
    if (fail) {
        printf "\nFAIL: a benchmark regressed by more than %s%% or a required benchmark is missing\n", limit
        exit 1
    }
}' "$1" "$2"
