package stfw

// Benchmarks for the pipelined stage engine: the same seeded workload run
// through the legacy ordered engine and the default pipelined one, across
// world sizes and skew patterns. The pipelined engine overlaps each stage's
// sends (worker goroutine, pooled frame buffers) with arrival-order
// receives, so it should win on wall clock AND allocations — run with
// `go test -bench PipelinedVsOrdered -benchmem` to see both.

import (
	"math/rand"
	"testing"

	"stfw/internal/runtime"
)

// powerLawSends builds a power-law skewed pattern: rank popularity and send
// degree both follow a Zipf-like distribution, the shape of the irregular
// applications (graphs, sparse matrices) the paper targets.
func powerLawSends(K int, words int64) *SendSets {
	rng := rand.New(rand.NewSource(int64(K)))
	zipf := rand.NewZipf(rng, 1.4, 1.5, uint64(K-1))
	s := NewSendSets(K)
	for src := 0; src < K; src++ {
		deg := int(zipf.Uint64()) + 1
		for j := 0; j < deg; j++ {
			// Bias destinations toward low ranks (popular endpoints).
			dst := int(zipf.Uint64())
			if dst != src {
				s.Add(src, dst, 1+int64(j)%words)
			}
		}
	}
	if err := s.Normalize(); err != nil {
		panic(err)
	}
	return s
}

// scaleWords multiplies every pair's word count, turning the seeded
// communication patterns into workloads with realistic per-pair volume: the
// paper's irregular applications move kilobytes per communicating pair, not
// the few words the pattern builders default to. The skew structure (who
// talks to whom) is unchanged.
func scaleWords(s *SendSets, f int64) *SendSets {
	out := NewSendSets(s.K)
	for src := range s.Sets {
		for _, pr := range s.Sets[src] {
			out.Add(src, pr.Dst, pr.Words*f)
		}
	}
	if err := out.Normalize(); err != nil {
		panic(err)
	}
	return out
}

// benchWordScale brings the 8-word pattern builders to 1024 words (8 KiB)
// per heavy pair.
const benchWordScale = 128

// benchDim picks the topology dimension the paper's evaluation favors at
// each world size (balanced mid-range dimension).
func benchDim(K int) int {
	switch {
	case K >= 1024:
		return 5
	case K >= 256:
		return 4
	default:
		return 3
	}
}

func benchPayloads(s *SendSets) []map[int][]byte {
	payloads := make([]map[int][]byte, s.K)
	for rank := 0; rank < s.K; rank++ {
		m := map[int][]byte{}
		for _, pr := range s.Sets[rank] {
			data := make([]byte, pr.Words*8)
			for i := range data {
				data[i] = byte(rank + i)
			}
			m[pr.Dst] = data
		}
		payloads[rank] = m
	}
	return payloads
}

func benchEngines(b *testing.B, K int, s *SendSets) {
	benchEnginesDim(b, K, benchDim(K), s)
}

func benchEnginesDim(b *testing.B, K, n int, s *SendSets) {
	topo, err := BalancedTopology(K, n)
	if err != nil {
		b.Fatal(err)
	}
	payloads := benchPayloads(s)
	plan, err := BuildPlan(topo, s)
	if err != nil {
		b.Fatal(err)
	}
	engines := []struct {
		name string
		opts []ExchangeOpt
	}{
		{"ordered", []ExchangeOpt{Ordered()}},
		{"pipelined", nil},
		{"pipelined-plan", []ExchangeOpt{WithPlan(plan)}},
	}
	for _, eng := range engines {
		eng := eng
		b.Run(eng.name, func(b *testing.B) {
			w, err := LocalWorld(K)
			if err != nil {
				b.Fatal(err)
			}
			comms := w.Comms()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				err := runtime.Run(comms, func(c runtime.Comm) error {
					_, err := Exchange(c, topo, payloads[c.Rank()], eng.opts...)
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPipelinedVsOrdered is the headline comparison: same world, same
// topology, same payloads; only the stage engine differs.
func BenchmarkPipelinedVsOrdered(b *testing.B) {
	for _, K := range []int{64, 256, 1024} {
		K := K
		b.Run("hotspot/K="+itoa(K), func(b *testing.B) {
			benchEngines(b, K, scaleWords(hotSpotSends(K, 8), benchWordScale))
		})
		b.Run("powerlaw/K="+itoa(K), func(b *testing.B) {
			benchEngines(b, K, scaleWords(powerLawSends(K, 8), benchWordScale))
		})
	}
}

// BenchmarkPipelinedDirect compares the two engines of the baseline
// DirectExchange on the hot-spot pattern.
func BenchmarkPipelinedDirect(b *testing.B) {
	K := 256
	s := scaleWords(hotSpotSends(K, 8), benchWordScale)
	payloads := benchPayloads(s)
	recv := s.RecvSets()
	recvFrom := make([][]int, K)
	for rank := 0; rank < K; rank++ {
		for _, pr := range recv[rank] {
			recvFrom[rank] = append(recvFrom[rank], pr.Dst)
		}
	}
	for _, eng := range []struct {
		name string
		opts []ExchangeOpt
	}{
		{"ordered", []ExchangeOpt{Ordered()}},
		{"pipelined", nil},
	} {
		eng := eng
		b.Run(eng.name, func(b *testing.B) {
			w, err := LocalWorld(K)
			if err != nil {
				b.Fatal(err)
			}
			comms := w.Comms()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				err := runtime.Run(comms, func(c runtime.Comm) error {
					_, err := ExchangeDirect(c, payloads[c.Rank()], recvFrom[c.Rank()], eng.opts...)
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
