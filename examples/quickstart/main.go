// Quickstart: regularize an irregular point-to-point pattern.
//
// One process (rank 0) must send a small payload to every other process — a
// hot-spot pattern that makes the whole application latency-bound, the
// scenario the paper's introduction motivates. We run the exchange twice
// inside this process over the channel transport: directly (BL, rank 0
// sends K-1 messages) and through a 3-dimensional virtual process topology
// (STFW, every rank sends at most sum(k_d - 1) messages), then compare the
// planned message counts, volume, and modeled communication time on a
// BlueGene/Q-like network.
package main

import (
	"fmt"
	"log"

	"stfw"
)

const K = 64

func main() {
	topo, err := stfw.BalancedTopology(K, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology: %s, per-process message bound %d (direct: %d)\n\n",
		topo, stfw.MessageBound(topo), K-1)

	// --- Execute the exchange for real over in-process channels. ---
	w, err := stfw.LocalWorld(K)
	if err != nil {
		log.Fatal(err)
	}
	received := make([]int, K)
	err = w.Run(func(c stfw.Comm) error {
		payloads := map[int][]byte{}
		if c.Rank() == 0 {
			for j := 1; j < K; j++ {
				payloads[j] = []byte(fmt.Sprintf("hello %d", j))
			}
		}
		d, err := stfw.Exchange(c, topo, payloads)
		if err != nil {
			return err
		}
		received[c.Rank()] = len(d.Subs)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	delivered := 0
	for _, n := range received[1:] {
		delivered += n
	}
	fmt.Printf("executed: %d/%d payloads delivered through the VPT\n\n", delivered, K-1)

	// --- Plan the same pattern to compare BL and STFW without running. ---
	sends := stfw.NewSendSets(K)
	for j := 1; j < K; j++ {
		sends.Add(0, j, 4) // 4 words each
	}
	if err := sends.Normalize(); err != nil {
		log.Fatal(err)
	}
	bl, err := stfw.BuildDirectPlan(sends)
	if err != nil {
		log.Fatal(err)
	}
	st, err := stfw.BuildPlan(topo, sends)
	if err != nil {
		log.Fatal(err)
	}
	blSum, err := stfw.Summarize("BL", bl, sends)
	if err != nil {
		log.Fatal(err)
	}
	stSum, err := stfw.Summarize("STFW3", st, sends)
	if err != nil {
		log.Fatal(err)
	}
	m, err := stfw.BlueGeneQ(K)
	if err != nil {
		log.Fatal(err)
	}
	blT, err := stfw.CommTime(m, bl)
	if err != nil {
		log.Fatal(err)
	}
	stT, err := stfw.CommTime(m, st)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-8s %8s %8s %10s %12s\n", "scheme", "mmax", "mavg", "volume", "comm (us)")
	fmt.Printf("%-8s %8.0f %8.2f %10.0f %12.1f\n", "BL", blSum.MMax, blSum.MAvg, blSum.VAvg*K, blT*1e6)
	fmt.Printf("%-8s %8.0f %8.2f %10.0f %12.1f\n", "STFW3", stSum.MMax, stSum.MAvg, stSum.VAvg*K, stT*1e6)
	fmt.Printf("\nSTFW cut the hot spot's message count %.0fx for %.1fx the volume,\n",
		blSum.MMax/stSum.MMax, stSum.VAvg/blSum.VAvg)
	fmt.Printf("making the modeled exchange %.1fx faster.\n", blT/stT)
}
