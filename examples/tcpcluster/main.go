// Store-and-forward over real TCP sockets.
//
// The same Exchange call that tests run over in-process channels here runs
// over loopback TCP connections: 16 ranks, each with its own listener,
// frames length-prefixed on the wire. Each rank sends a token to a pseudo-
// random subset of ranks through a 2D virtual topology, discovers who will
// send to it with DiscoverSources (itself a regularized exchange), and
// verifies every delivery.
package main

import (
	"fmt"
	"log"
	"sort"

	"stfw"
)

const K = 16

func main() {
	topo, err := stfw.BalancedTopology(K, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("running %d ranks over TCP, topology %s\n\n", K, topo)

	w, err := stfw.TCPWorld(K)
	if err != nil {
		log.Fatal(err)
	}
	var report [K]string
	err = w.Run(func(c stfw.Comm) error {
		me := c.Rank()
		// Deterministic pseudo-random destinations: me+1, me*3+1, me+7.
		destSet := map[int]bool{}
		for _, d := range []int{(me + 1) % K, (me*3 + 1) % K, (me + 7) % K} {
			if d != me {
				destSet[d] = true
			}
		}
		payloads := map[int][]byte{}
		dests := make([]int, 0, len(destSet))
		for d := range destSet {
			payloads[d] = []byte{byte(me), byte(d)}
			dests = append(dests, d)
		}

		// Phase 1: discover senders (collective).
		srcs, err := stfw.DiscoverSources(c, dests)
		if err != nil {
			return err
		}
		sort.Ints(srcs)

		// Phase 2: the data exchange (collective).
		got, err := stfw.Exchange(c, topo, payloads)
		if err != nil {
			return err
		}
		if len(got.Subs) != len(srcs) {
			return fmt.Errorf("rank %d: %d deliveries but %d announced senders",
				me, len(got.Subs), len(srcs))
		}
		for i, sub := range got.Subs {
			if sub.Src != srcs[i] || int(sub.Data[0]) != sub.Src || int(sub.Data[1]) != me {
				return fmt.Errorf("rank %d: corrupt delivery %+v", me, sub)
			}
		}
		report[me] = fmt.Sprintf("rank %2d: sent %d, received %d from %v",
			me, len(payloads), len(got.Subs), srcs)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, line := range report {
		fmt.Println(line)
	}
	fmt.Println("\nall deliveries verified over TCP")
}
