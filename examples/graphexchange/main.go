// Neighborhood exchange on a power-law graph.
//
// Graph-analytics workloads (the paper's coAuthorsDBLP / coPapersCiteseer
// instances) exchange per-vertex state along edges every superstep. With a
// power-law degree distribution, the owners of hub vertices must message
// almost every other rank: the max message count sits near K-1 while the
// median rank talks to a handful — precisely the imbalance of Figure 1.
//
// This example builds such a graph, hash-partitions the vertices, runs one
// superstep of "push my vertex values to every rank holding a neighbor"
// both directly and through VPTs of increasing dimension, and prints how
// the dimension trades maximum message count against volume.
package main

import (
	"fmt"
	"log"

	"stfw"
	"stfw/internal/partition"
	"stfw/internal/sparse"
	"stfw/internal/spmv"
)

const K = 128

func main() {
	// A power-law graph via the generator's skewed tail: ~64k edges over
	// 8k vertices with hubs touching a quarter of the graph.
	g, err := sparse.Generate(sparse.GenParams{
		Name: "powerlaw-example", Rows: 8192, TargetNNZ: 130000,
		MaxDegree: 2048, HubRows: 6, Band: 2, TailFrac: 0.85, TailSkew: 1.6,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := sparse.ComputeStats(g)
	fmt.Printf("graph: %d vertices, %d edges, max degree %d, cv %.2f\n\n",
		st.Rows, st.NNZ/2, st.MaxDegree, st.CV)

	// Hash partition (what graph engines do by default).
	part, err := partition.Random(g.Rows, K, 1)
	if err != nil {
		log.Fatal(err)
	}
	// The superstep's communication pattern is exactly the SpMV pattern:
	// vertex owner pushes its value to every rank owning a neighbor.
	pat, err := spmv.BuildPattern(g, part)
	if err != nil {
		log.Fatal(err)
	}
	sends, err := pat.SendSets()
	if err != nil {
		log.Fatal(err)
	}

	m, err := stfw.CrayXC40(K)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-8s %8s %8s %12s %12s\n", "scheme", "mmax", "mavg", "vavg(words)", "comm(us)")
	show := func(name string, plan *stfw.Plan) {
		sum, err := stfw.Summarize(name, plan, sends)
		if err != nil {
			log.Fatal(err)
		}
		tm, err := stfw.CommTime(m, plan)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %8.0f %8.1f %12.0f %12.1f\n", name, sum.MMax, sum.MAvg, sum.VAvg, tm*1e6)
	}

	bl, err := stfw.BuildDirectPlan(sends)
	if err != nil {
		log.Fatal(err)
	}
	show("BL", bl)
	for n := 2; n <= stfw.MaxTopologyDim(K); n++ {
		topo, err := stfw.BalancedTopology(K, n)
		if err != nil {
			log.Fatal(err)
		}
		plan, err := stfw.BuildPlan(topo, sends)
		if err != nil {
			log.Fatal(err)
		}
		show(fmt.Sprintf("STFW%d", n), plan)
	}

	fmt.Println("\nhigher dimensions keep shaving the hub ranks' message counts while")
	fmt.Println("volume grows with the extra forwarding — the paper's central trade-off.")
}
