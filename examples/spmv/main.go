// Distributed SpMV — the paper's evaluation workload, end to end.
//
// We generate the analog of the paper's gupta2 matrix (a linear-programming
// structure with a few very dense rows: cv 5.2, a hub touching 13% of the
// rows), partition it across 64 ranks with the greedy partitioner, and run
// y = A*x twice over in-process channels: once with direct messages and
// once through a 3D virtual process topology. Both results are verified
// against the serial multiply; the plans show what the regularization did
// to the communication pattern.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"stfw"
	"stfw/internal/partition"
	"stfw/internal/sparse"
	"stfw/internal/spmv"
)

const (
	K     = 64
	dim   = 3
	scale = 16
)

func main() {
	a, err := sparse.CatalogMatrix("gupta2", scale)
	if err != nil {
		log.Fatal(err)
	}
	st := sparse.ComputeStats(a)
	fmt.Printf("gupta2 analog: %d rows, %d nonzeros, max degree %d (cv %.1f)\n",
		st.Rows, st.NNZ, st.MaxDegree, st.CV)

	part, err := partition.Greedy(a, K, partition.DefaultGreedy())
	if err != nil {
		log.Fatal(err)
	}
	pat, err := spmv.BuildPattern(a, part)
	if err != nil {
		log.Fatal(err)
	}
	sends, err := pat.SendSets()
	if err != nil {
		log.Fatal(err)
	}

	topo, err := stfw.BalancedTopology(K, dim)
	if err != nil {
		log.Fatal(err)
	}
	bl, err := stfw.BuildDirectPlan(sends)
	if err != nil {
		log.Fatal(err)
	}
	stp, err := stfw.BuildPlan(topo, sends)
	if err != nil {
		log.Fatal(err)
	}
	blSum, _ := stfw.Summarize("BL", bl, sends)
	stSum, _ := stfw.Summarize("STFW", stp, sends)
	fmt.Printf("exchange plan: BL mmax=%.0f mavg=%.1f | STFW%d mmax=%.0f mavg=%.1f (bound %d)\n\n",
		blSum.MMax, blSum.MAvg, dim, stSum.MMax, stSum.MAvg, stfw.MessageBound(topo))

	rng := rand.New(rand.NewSource(7))
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want, err := a.MulVec(nil, x)
	if err != nil {
		log.Fatal(err)
	}

	for _, opt := range []spmv.Options{
		{Method: spmv.BL},
		{Method: spmv.STFW, Topo: topo},
	} {
		w, err := stfw.LocalWorld(K)
		if err != nil {
			log.Fatal(err)
		}
		ys := make([][]float64, K)
		err = w.Run(func(c stfw.Comm) error {
			y, err := spmv.Run(c, a, part, pat, x, opt)
			if err != nil {
				return err
			}
			ys[c.Rank()] = y
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		got, err := spmv.Reduce(part, ys)
		if err != nil {
			log.Fatal(err)
		}
		var maxErr float64
		for i := range want {
			maxErr = math.Max(maxErr, math.Abs(got[i]-want[i]))
		}
		fmt.Printf("%-5v: parallel SpMV on %d ranks, max |err| vs serial = %.2e\n",
			opt.Method, K, maxErr)
		if maxErr > 1e-9 {
			log.Fatalf("%v verification failed", opt.Method)
		}
	}
	fmt.Println("\nboth schemes produce the exact serial result; STFW just moves the")
	fmt.Println("same values through the virtual topology in", dim, "regular stages.")
}
