// Distributed conjugate gradient with a regularized exchange.
//
// Iterative solvers are where the paper's technique earns its keep: the
// SpMV communication pattern is fixed across hundreds of iterations, so its
// latency cost recurs every step and the one-time VPT setup is free by
// comparison. This example solves A x = b for a symmetric positive definite
// system derived from the pkustk04 analog (structural engineering, dense
// rows) on 32 ranks, once with direct messages and once through a T5
// virtual topology, and verifies both solutions against the serial solver.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"stfw"
	"stfw/internal/iterative"
	"stfw/internal/partition"
	"stfw/internal/runtime"
	"stfw/internal/sparse"
	"stfw/internal/spmv"
)

const (
	K     = 32
	dim   = 5
	scale = 32
)

func main() {
	base, err := sparse.CatalogMatrix("pkustk04", scale)
	if err != nil {
		log.Fatal(err)
	}
	a, err := sparse.DiagonallyDominant(base, 2)
	if err != nil {
		log.Fatal(err)
	}
	st := sparse.ComputeStats(a)
	fmt.Printf("system: %d unknowns, %d nonzeros (SPD from the pkustk04 analog)\n",
		st.Rows, st.NNZ)

	rng := rand.New(rand.NewSource(99))
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = rng.NormFloat64()
	}

	part, err := partition.Greedy(a, K, partition.DefaultGreedy())
	if err != nil {
		log.Fatal(err)
	}
	pat, err := spmv.BuildPattern(a, part)
	if err != nil {
		log.Fatal(err)
	}
	sends, err := pat.SendSets()
	if err != nil {
		log.Fatal(err)
	}
	topo, err := stfw.BalancedTopology(K, dim)
	if err != nil {
		log.Fatal(err)
	}

	// What the regularization does to the per-iteration exchange:
	bl, _ := stfw.BuildDirectPlan(sends)
	stp, _ := stfw.BuildPlan(topo, sends)
	blSum, _ := stfw.Summarize("BL", bl, sends)
	stSum, _ := stfw.Summarize("STFW", stp, sends)
	fmt.Printf("per-iteration exchange: BL mmax=%.0f | STFW%d mmax=%.0f (bound %d)\n\n",
		blSum.MMax, dim, stSum.MMax, stfw.MessageBound(topo))

	xSerial, iters, err := iterative.SerialCG(a, b, 0, 1e-10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serial CG: converged in %d iterations\n", iters)

	for _, opt := range []spmv.Options{
		{Method: spmv.BL},
		{Method: spmv.STFW, Topo: topo},
	} {
		w, err := stfw.LocalWorld(K)
		if err != nil {
			log.Fatal(err)
		}
		results := make([]*iterative.CGResult, K)
		err = w.Run(func(c runtime.Comm) error {
			res, err := iterative.CG(c, a, part, pat, b, iterative.CGOptions{Comm: opt})
			if err != nil {
				return err
			}
			results[c.Rank()] = res
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		xs := make([][]float64, K)
		for r := range results {
			xs[r] = results[r].X
		}
		x, err := spmv.Reduce(part, xs)
		if err != nil {
			log.Fatal(err)
		}
		var maxDiff float64
		for i := range x {
			maxDiff = math.Max(maxDiff, math.Abs(x[i]-xSerial[i]))
		}
		fmt.Printf("%-5v: converged in %d iterations (residual %.1e), max |x - x_serial| = %.2e\n",
			opt.Method, results[0].Iters, results[0].Residual, maxDiff)
		if maxDiff > 1e-6 {
			log.Fatalf("%v solution diverges from serial", opt.Method)
		}
	}
	fmt.Println("\nthe STFW iterations communicate with a bounded message count at")
	fmt.Println("every step while producing the same solver trajectory.")
}
