module stfw

go 1.22
