package stfw_test

import (
	"fmt"
	"log"

	"stfw"
)

// The hot-spot pattern of the paper's introduction: rank 0 must reach every
// other rank. Through a T3(4,4,4) topology it sends at most 9 messages
// instead of 63.
func ExampleExchange() {
	const K = 64
	topo, err := stfw.BalancedTopology(K, 3)
	if err != nil {
		log.Fatal(err)
	}
	world, err := stfw.LocalWorld(K)
	if err != nil {
		log.Fatal(err)
	}
	received := make([]int, K)
	err = world.Run(func(c stfw.Comm) error {
		payloads := map[int][]byte{}
		if c.Rank() == 0 {
			for j := 1; j < K; j++ {
				payloads[j] = []byte{byte(j)}
			}
		}
		got, err := stfw.Exchange(c, topo, payloads)
		if err != nil {
			return err
		}
		received[c.Rank()] = len(got.Subs)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	total := 0
	for _, n := range received[1:] {
		total += n
	}
	fmt.Printf("topology %s, message bound %d, delivered %d/%d\n",
		topo, stfw.MessageBound(topo), total, K-1)
	// Output:
	// topology T3(4,4,4), message bound 9, delivered 63/63
}

// Planning without executing: route a pattern through two topologies and
// compare the paper's metrics.
func ExampleBuildPlan() {
	const K = 256
	sends := stfw.NewSendSets(K)
	for j := 1; j < K; j++ {
		sends.Add(0, j, 8) // one hot sender, 8 words per message
	}
	if err := sends.Normalize(); err != nil {
		log.Fatal(err)
	}

	direct, err := stfw.BuildDirectPlan(sends)
	if err != nil {
		log.Fatal(err)
	}
	topo, err := stfw.BalancedTopology(K, 4)
	if err != nil {
		log.Fatal(err)
	}
	routed, err := stfw.BuildPlan(topo, sends)
	if err != nil {
		log.Fatal(err)
	}
	bl, err := stfw.Summarize("BL", direct, sends)
	if err != nil {
		log.Fatal(err)
	}
	st, err := stfw.Summarize("STFW4", routed, sends)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BL:    mmax %.0f, volume %.0f words\n", bl.MMax, bl.VAvg*K)
	fmt.Printf("STFW4: mmax %.0f, volume %.0f words\n", st.MMax, st.VAvg*K)
	// Output:
	// BL:    mmax 255, volume 2040 words
	// STFW4: mmax 12, volume 6144 words
}

// The Section 4 analysis in one call: how much extra volume the worst-case
// complete exchange pays on uniform topologies at K = 256.
func ExampleVolumeBlowup() {
	fmt.Printf("T2(16,16):      %.2f\n", stfw.VolumeBlowup(16, 2))
	fmt.Printf("T4(4,4,4,4):    %.2f\n", stfw.VolumeBlowup(4, 4))
	fmt.Printf("T8(2,...,2):    %.2f\n", stfw.VolumeBlowup(2, 8))
	// Output:
	// T2(16,16):      1.88
	// T4(4,4,4,4):    3.01
	// T8(2,...,2):    4.02
}

// A persistent exchange learns the frame layout once and replays it with
// fresh payloads — the iterative-application fast path.
func ExampleNewPersistent() {
	const K = 16
	topo, err := stfw.BalancedTopology(K, 2)
	if err != nil {
		log.Fatal(err)
	}
	world, err := stfw.LocalWorld(K)
	if err != nil {
		log.Fatal(err)
	}
	ok := true
	err = world.Run(func(c stfw.Comm) error {
		dst := (c.Rank() + 5) % K
		p, _, err := stfw.NewPersistent(c, topo, map[int][]byte{dst: {0}})
		if err != nil {
			return err
		}
		for round := byte(1); round <= 3; round++ {
			got, err := p.Run(c, map[int][]byte{dst: {round}})
			if err != nil {
				return err
			}
			if len(got.Subs) != 1 || got.Subs[0].Data[0] != round {
				ok = false
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("replays intact:", ok)
	// Output:
	// replays intact: true
}

// VolumeBlowup reads from the exact formula of Section 4; the bound that
// the store-and-forward scheme never exceeds per process comes from
// MessageBound.
func ExampleMessageBound() {
	for n := 1; n <= 8; n++ {
		topo, err := stfw.BalancedTopology(256, n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("n=%d: %d\n", n, stfw.MessageBound(topo))
	}
	// Output:
	// n=1: 255
	// n=2: 30
	// n=3: 17
	// n=4: 12
	// n=5: 11
	// n=6: 10
	// n=7: 9
	// n=8: 8
}
